"""Figure 12 — forced-invalidation rate comparison.

Replays each Table 2 workload against four directory organizations on
identical systems and reports forced invalidations as a fraction of
directory entry insertions:

* **Sparse 2x** — 8-way set-associative, 2x capacity over-provisioning;
* **Sparse 8x** — 8-way set-associative, 8x over-provisioning;
* **Skewed 2x** — 4-way skewed-associative, 2x over-provisioning
  (same capacity as Sparse 2x, conventional single-step victimisation);
* **Cuckoo** — the chosen designs of Section 5.3: 4-way at 1x for
  Shared-L2, 3-way at 1.5x for Private-L2 (half the capacity of the 2x
  baselines).

The expected ordering — Sparse 2x worst, Skewed 2x better on the skewed
server workloads, Sparse 8x acceptable but still conflicting, Cuckoo
near-zero despite the smallest capacity — is what the accompanying
benchmark verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.frame import SweepFrame
from repro.analysis.tables import format_percentage
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES

__all__ = ["InvalidationResult", "run", "grid", "format_table", "ORGANIZATION_LABELS"]

ORGANIZATION_LABELS = ("Sparse 2x", "Sparse 8x", "Skewed 2x", "Cuckoo")


@dataclass
class InvalidationResult:
    """Invalidation rate per configuration, organization and workload."""

    shared_l2: Dict[str, Dict[str, float]]
    private_l2: Dict[str, Dict[str, float]]
    cuckoo_label_shared: str = "Cuckoo 1x"
    cuckoo_label_private: str = "Cuckoo 1.5x"

    def configurations(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def _geometry(org: str, tracked_level: str) -> tuple:
    """(organization, ways, provisioning) for one labelled comparison point."""
    if org == "Sparse 2x":
        return ("sparse", 8, 2.0)
    if org == "Sparse 8x":
        return ("sparse", 8, 8.0)
    if org == "Skewed 2x":
        return ("skewed", 4, 2.0)
    if org == "Cuckoo":
        return ("cuckoo", 4, 1.0) if tracked_level == "L1" else ("cuckoo", 3, 1.5)
    raise KeyError(f"unknown organization label {org!r}")


def _spec(
    workload: str,
    tracked_level: str,
    org: str,
    scale: int,
    measure_accesses: int,
    seed: int,
) -> RunSpec:
    organization, ways, provisioning = _geometry(org, tracked_level)
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization=organization,
        ways=ways,
        provisioning=provisioning,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    workloads: Optional[Sequence[str]] = None,
    organizations: Sequence[str] = ORGANIZATION_LABELS,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The Figure 12 sweep: every organization × workload × configuration."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    return RunGrid(
        _spec(name, level, org, scale, measure_accesses, seed)
        for level in ("L1", "L2")
        for name in names
        for org in organizations
    )


def _measure(
    report,
    tracked_level: str,
    workload_names: Sequence[str],
    organizations: Sequence[str],
    scale: int,
    measure_accesses: int,
    seed: int,
) -> Dict[str, Dict[str, float]]:
    rates: Dict[str, Dict[str, float]] = {org: {} for org in organizations}
    for name in workload_names:
        for org in organizations:
            result = report.result_for(
                _spec(name, tracked_level, org, scale, measure_accesses, seed)
            )
            rates[org][name] = result.forced_invalidation_rate
    return rates


def run(
    workloads: Optional[Sequence[str]] = None,
    organizations: Sequence[str] = ORGANIZATION_LABELS,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> InvalidationResult:
    """Reproduce Figure 12 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    runner = runner if runner is not None else serial_runner()
    report = runner.run(grid(names, organizations, scale, measure_accesses, seed))
    shared = _measure(report, "L1", names, organizations, scale, measure_accesses, seed)
    private = _measure(report, "L2", names, organizations, scale, measure_accesses, seed)
    return InvalidationResult(shared_l2=shared, private_l2=private)


def format_table(result: InvalidationResult) -> str:
    sections: List[str] = []
    for config_name, rates in result.configurations().items():
        frame = SweepFrame.from_rows(
            {"workload": name, "organization": org, "rate": rate}
            for org, per_workload in rates.items()
            for name, rate in per_workload.items()
        )
        sections.append(
            frame.pivot(
                index="workload",
                columns="organization",
                value="rate",
                index_label="Workload",
                column_order=list(rates),
                default=0.0,
                fmt=lambda value: format_percentage(value, digits=3),
            ).render(
                title=f"Figure 12 ({config_name}): directory forced-invalidation rates"
            )
        )
    return "\n\n".join(sections)
