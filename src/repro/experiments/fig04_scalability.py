"""Figure 4 — area and energy scalability of the baseline organizations.

Analytical projection of the per-core energy (relative to a 1 MB L2 tag
lookup) and per-core area (relative to a 1 MB L2 data array) of the
baseline directory organizations — Duplicate-Tag, Tagless, Sparse 8x
In-Cache, Sparse 8x Hierarchical and Sparse 8x Coarse — as the core count
grows from 16 to 1024.  The projection for the Cuckoo variants is part of
Figure 13 (:mod:`repro.experiments.fig13_power_area`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.frame import SweepFrame
from repro.analysis.tables import format_percentage
from repro.energy.model import (
    FIGURE4_ORGANIZATIONS,
    ScalingScenario,
    scaling_table,
)

__all__ = [
    "ScalabilityResult",
    "run",
    "format_table",
    "scaling_sections",
    "DEFAULT_CORE_COUNTS",
]

DEFAULT_CORE_COUNTS = (16, 32, 64, 128, 256, 512, 1024)


@dataclass
class ScalabilityResult:
    """Normalised energy/area series per organization for one scenario."""

    scenario_name: str
    core_counts: List[int]
    series: Dict[str, Dict[int, Dict[str, float]]]

    def energy(self, organization: str, cores: int) -> float:
        return self.series[organization][cores]["energy"]

    def area(self, organization: str, cores: int) -> float:
        return self.series[organization][cores]["area"]


def run(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    organizations: Sequence[str] = tuple(FIGURE4_ORGANIZATIONS),
) -> Dict[str, ScalabilityResult]:
    """Reproduce Figure 4 for both the Shared-L2 and Private-L2 scenarios."""
    results: Dict[str, ScalabilityResult] = {}
    for name, scenario in (
        ("Shared-L2", ScalingScenario.shared_l2()),
        ("Private-L2", ScalingScenario.private_l2()),
    ):
        series = scaling_table(organizations, scenario, core_counts)
        results[name] = ScalabilityResult(
            scenario_name=name,
            core_counts=list(core_counts),
            series=series,
        )
    return results


def scaling_sections(
    results: Dict[str, ScalabilityResult], figure_label: str
) -> List[str]:
    """Energy and area pivot tables per scenario (shared with Figure 13)."""
    sections: List[str] = []
    for scenario_name, result in results.items():
        for metric, reference in (
            ("energy", "1MB L2 tag lookup"),
            ("area", "1MB L2 data array"),
        ):
            frame = SweepFrame.from_rows(
                {
                    "cores": cores,
                    "organization": organization,
                    "value": result.series[organization][cores][metric],
                }
                for organization in result.series
                for cores in result.core_counts
            )
            sections.append(
                frame.pivot(
                    index="cores",
                    columns="organization",
                    value="value",
                    index_label="Cores",
                    index_order=result.core_counts,
                    column_order=list(result.series.keys()),
                    fmt=lambda value: format_percentage(value, digits=1),
                ).render(
                    title=(
                        f"{figure_label} ({scenario_name}): per-core directory "
                        f"{metric} relative to {reference}"
                    )
                )
            )
    return sections


def format_table(results: Dict[str, ScalabilityResult]) -> str:
    """Render the energy and area panels for every scenario."""
    return "\n\n".join(scaling_sections(results, "Figure 4"))
