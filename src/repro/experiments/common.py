"""Shared plumbing for the experiment drivers.

The paper simulates 16-core systems with 64 KB L1s and 1 MB-per-core L2s
over 100 M-instruction windows.  Replaying that volume through a pure
Python model for every (workload × configuration × organization) point
would take hours, so the experiments run, by default, on a *scaled-down*
system: cache capacities are divided by a scale factor while every ratio
that the directory behaviour depends on (associativities, block size,
footprint-to-cache ratios, provisioning factors) is preserved.  The
``scale=1`` setting recovers the paper's full-size system for anyone
willing to wait.

The simulation-based drivers no longer loop over :func:`run_workload`
themselves: each one *declares* its sweep as a
:class:`repro.engine.spec.RunGrid` of :class:`~repro.engine.spec.RunSpec`
points (see each driver's ``grid()`` function) and hands the grid to a
:class:`repro.engine.runner.ParallelRunner`, which shards the points
across worker processes and skips any point already present in the
content-addressed :class:`repro.engine.store.ResultStore`.  By default
(``runner=None``) the drivers execute serially with no cache, exactly as
before; pass a configured runner — or use the ``repro-run`` CLI — for
parallel, incremental execution.  Cached results live in
``~/.cache/repro-cuckoo/results.jsonl`` unless ``$REPRO_RESULT_STORE``
says otherwise (the benchmark harness keeps its own store under
``benchmarks/.engine-cache/``).

:func:`run_workload` remains the single source of truth for how one point
is simulated; the engine's workers call straight back into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.config import CacheConfig, CacheLevel, DirectoryConfig, SystemConfig
from repro.coherence.simulator import SimulationResult, TraceSimulator
from repro.coherence.system import TiledCMP
from repro.core.cuckoo_directory import CuckooDirectory
from repro.directories.base import Directory
from repro.directories.skewed import SkewedDirectory
from repro.directories.sparse import SparseDirectory
from repro.engine.spec import DEFAULT_MEASURE_ACCESSES, DEFAULT_SCALE
from repro.workloads.base import Workload

__all__ = [
    "scaled_system",
    "cuckoo_factory",
    "sparse_factory",
    "skewed_factory",
    "run_workload",
    "WorkloadRun",
    "DEFAULT_SCALE",
    "DEFAULT_MEASURE_ACCESSES",
]


def scaled_system(
    tracked_level: CacheLevel,
    num_cores: int = 16,
    scale: int = DEFAULT_SCALE,
) -> SystemConfig:
    """A Table 1 system with cache capacities divided by ``scale``.

    Associativities and the 64-byte block size are preserved, so set
    counts shrink by the scale factor.  ``scale=1`` is the paper's
    full-size system.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    l1_size = max(2 * 64 * 2, (64 * 1024) // scale)
    l2_size = max(16 * 64 * 2, (1024 * 1024) // scale)
    # Pages scale with the caches so the pages-per-directory-set ratio (which
    # governs how uneven the physical layout looks to the directory) matches
    # the full-size system.
    page_bytes = max(2 * 64, 8192 // scale)
    return SystemConfig(
        num_cores=num_cores,
        l1_config=CacheConfig(size_bytes=l1_size, associativity=2),
        l2_config=CacheConfig(size_bytes=l2_size, associativity=16),
        tracked_level=tracked_level,
        page_bytes=page_bytes,
    )


def _sets_for_provisioning(system: SystemConfig, ways: int, provisioning: float) -> int:
    """Power-of-two set count giving ``provisioning`` × worst-case capacity."""
    config = DirectoryConfig.for_provisioning(system, ways=ways, provisioning=provisioning)
    return config.sets


def cuckoo_factory(
    system: SystemConfig,
    ways: int = 4,
    provisioning: float = 1.0,
    sets: Optional[int] = None,
    **kwargs,
) -> Callable[[int, int], Directory]:
    """Directory factory building Cuckoo slices sized by provisioning factor."""
    resolved_sets = sets if sets is not None else _sets_for_provisioning(
        system, ways, provisioning
    )

    def factory(num_caches: int, slice_id: int) -> Directory:
        return CuckooDirectory(
            num_caches=num_caches, num_sets=resolved_sets, num_ways=ways, **kwargs
        )

    return factory


def sparse_factory(
    system: SystemConfig,
    ways: int = 8,
    provisioning: float = 2.0,
    sets: Optional[int] = None,
    **kwargs,
) -> Callable[[int, int], Directory]:
    """Directory factory building Sparse slices sized by provisioning factor."""
    resolved_sets = sets if sets is not None else _sets_for_provisioning(
        system, ways, provisioning
    )

    def factory(num_caches: int, slice_id: int) -> Directory:
        return SparseDirectory(
            num_caches=num_caches, num_sets=resolved_sets, num_ways=ways, **kwargs
        )

    return factory


def skewed_factory(
    system: SystemConfig,
    ways: int = 4,
    provisioning: float = 2.0,
    sets: Optional[int] = None,
    **kwargs,
) -> Callable[[int, int], Directory]:
    """Directory factory building skewed-associative slices."""
    resolved_sets = sets if sets is not None else _sets_for_provisioning(
        system, ways, provisioning
    )

    def factory(num_caches: int, slice_id: int) -> Directory:
        return SkewedDirectory(
            num_caches=num_caches, num_sets=resolved_sets, num_ways=ways, **kwargs
        )

    return factory


@dataclass
class WorkloadRun:
    """One simulated (workload, system, organization) point."""

    workload: str
    tracked_level: CacheLevel
    result: SimulationResult
    tracked_frames_total: int
    directory_capacity_total: int

    @property
    def occupancy_vs_worst_case(self) -> float:
        """Occupancy relative to the worst-case tracked-block count (1x).

        Figure 8 reports occupancy against the number of private-cache
        frames the directory must be able to track, not against the
        (possibly over-provisioned) directory capacity, so re-normalise
        the capacity-relative occupancy the simulator records.
        """
        if self.tracked_frames_total == 0:
            return 0.0
        return (
            self.result.average_occupancy
            * self.directory_capacity_total
            / self.tracked_frames_total
        )


def run_workload(
    workload: Workload,
    system_config: SystemConfig,
    directory_factory: Callable[[int, int], Directory],
    measure_accesses: int = DEFAULT_MEASURE_ACCESSES,
    warmup_accesses: Optional[int] = None,
    seed: int = 0,
    occupancy_sample_interval: int = 2_000,
    timeline_interval: Optional[int] = None,
    batch_kernel: Optional[str] = None,
) -> WorkloadRun:
    """Build a system, warm it up, and measure one workload on it."""
    system = TiledCMP(system_config, directory_factory, batch_kernel=batch_kernel)
    if warmup_accesses is None:
        warmup_accesses = workload.recommended_warmup(system_config)
    simulator = TraceSimulator(
        system,
        warmup_accesses=warmup_accesses,
        occupancy_sample_interval=occupancy_sample_interval,
        timeline_interval=timeline_interval,
    )
    # The chunked trace is access-for-access identical to workload.trace();
    # it just skips building one MemoryAccess object per access.
    chunks = workload.trace_chunks(system_config, seed=seed)
    result = simulator.run_chunks(chunks, max_accesses=measure_accesses)
    frames_total = (
        system_config.num_tracked_caches
        * system_config.tracked_cache_config.num_frames
    )
    capacity_total = sum(directory.capacity for directory in system.directories)
    return WorkloadRun(
        workload=workload.name,
        tracked_level=system_config.tracked_level,
        result=result,
        tracked_frames_total=frames_total,
        directory_capacity_total=capacity_total,
    )
