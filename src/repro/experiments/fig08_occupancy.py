"""Figure 8 — average directory occupancy per workload.

For every Table 2 workload and both system configurations, the coherence
system is simulated with a generously sized (2x-provisioned) Cuckoo
directory so that no forced invalidations distort residency, and the
average number of live directory entries is reported relative to the
worst-case number of blocks the directory must be able to track (the
aggregate tracked-cache frame count, the paper's "1x" reference).

Sharing of instructions and data pushes this occupancy well below 100 %
for the server workloads; DSS and scientific workloads with large private
footprints approach (and for ocean essentially reach) 100 % in the
Private-L2 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.frame import SweepFrame
from repro.analysis.tables import format_percentage
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES

__all__ = ["OccupancyResult", "run", "grid", "format_table"]


@dataclass
class OccupancyResult:
    """Average occupancy (vs. the 1x worst case) per workload and config."""

    shared_l2: Dict[str, float]
    private_l2: Dict[str, float]

    def configurations(self) -> Dict[str, Dict[str, float]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def _spec(
    workload: str, tracked_level: str, scale: int, measure_accesses: int, seed: int
) -> RunSpec:
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=4,
        provisioning=2.0,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The Figure 8 sweep: every workload on both system configurations."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    return RunGrid(
        _spec(name, level, scale, measure_accesses, seed)
        for level in ("L1", "L2")
        for name in names
    )


def run(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> OccupancyResult:
    """Reproduce Figure 8 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    runner = runner if runner is not None else serial_runner()
    report = runner.run(grid(names, scale, measure_accesses, seed))
    shared: Dict[str, float] = {}
    private: Dict[str, float] = {}
    for level, results in (("L1", shared), ("L2", private)):
        for name in names:
            point = report.result_for(_spec(name, level, scale, measure_accesses, seed))
            results[name] = point.occupancy_vs_worst_case
    return OccupancyResult(shared_l2=shared, private_l2=private)


def format_table(result: OccupancyResult) -> str:
    frame = SweepFrame.from_rows(
        {"workload": name, "config": config, "occupancy": value}
        for config, values in result.configurations().items()
        for name, value in values.items()
    )
    return frame.pivot(
        index="workload",
        columns="config",
        value="occupancy",
        index_label="Workload",
        column_order=("Shared L2", "Private L2"),
        default=0.0,
        fmt=lambda value: format_percentage(value, digits=1),
    ).render(title="Figure 8: average directory occupancy (vs. 1x capacity)")
