"""Figure 8 — average directory occupancy per workload.

For every Table 2 workload and both system configurations, the coherence
system is simulated with a generously sized (2x-provisioned) Cuckoo
directory so that no forced invalidations distort residency, and the
average number of live directory entries is reported relative to the
worst-case number of blocks the directory must be able to track (the
aggregate tracked-cache frame count, the paper's "1x" reference).

Sharing of instructions and data pushes this occupancy well below 100 %
for the server workloads; DSS and scientific workloads with large private
footprints approach (and for ocean essentially reach) 100 % in the
Private-L2 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES, get_workload

__all__ = ["OccupancyResult", "run", "format_table"]


@dataclass
class OccupancyResult:
    """Average occupancy (vs. the 1x worst case) per workload and config."""

    shared_l2: Dict[str, float]
    private_l2: Dict[str, float]

    def configurations(self) -> Dict[str, Dict[str, float]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def run(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> OccupancyResult:
    """Reproduce Figure 8 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    shared: Dict[str, float] = {}
    private: Dict[str, float] = {}
    for tracked_level, results in (
        (CacheLevel.L1, shared),
        (CacheLevel.L2, private),
    ):
        system = common.scaled_system(tracked_level, scale=scale)
        for name in names:
            workload = get_workload(name)
            factory = common.cuckoo_factory(system, ways=4, provisioning=2.0)
            run_result = common.run_workload(
                workload,
                system,
                factory,
                measure_accesses=measure_accesses,
                seed=seed,
            )
            results[name] = run_result.occupancy_vs_worst_case
    return OccupancyResult(shared_l2=shared, private_l2=private)


def format_table(result: OccupancyResult) -> str:
    headers = ["Workload", "Shared L2", "Private L2"]
    rows: List[List[object]] = []
    for name in result.shared_l2:
        rows.append(
            [
                name,
                format_percentage(result.shared_l2[name], digits=1),
                format_percentage(result.private_l2.get(name, 0.0), digits=1),
            ]
        )
    return render_table(
        headers, rows, title="Figure 8: average directory occupancy (vs. 1x capacity)"
    )
