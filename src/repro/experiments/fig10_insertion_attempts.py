"""Figure 10 — average insertion attempts of the chosen Cuckoo designs.

Uses the directory geometries selected in Section 5.3 — 4-way, 1x
provisioning for the Shared-L2 configuration and 3-way, 1.5x provisioning
for the Private-L2 configuration — and reports the average number of
insertion attempts per workload.  The paper's observation is that despite
the small directory sizes the average stays well under two attempts, with
the private-footprint-heavy workloads (DSS, ocean) at the high end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.frame import SweepFrame
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES

__all__ = ["InsertionAttemptsResult", "run", "grid", "format_table"]

#: The chosen designs of Section 5.3: (ways, provisioning factor).
SHARED_L2_DESIGN = (4, 1.0)
PRIVATE_L2_DESIGN = (3, 1.5)


@dataclass
class InsertionAttemptsResult:
    shared_l2: Dict[str, float]
    private_l2: Dict[str, float]

    def configurations(self) -> Dict[str, Dict[str, float]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def _spec(
    workload: str, tracked_level: str, scale: int, measure_accesses: int, seed: int
) -> RunSpec:
    ways, provisioning = (
        SHARED_L2_DESIGN if tracked_level == "L1" else PRIVATE_L2_DESIGN
    )
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=ways,
        provisioning=provisioning,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The Figure 10 sweep: the Section 5.3 designs over every workload."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    return RunGrid(
        _spec(name, level, scale, measure_accesses, seed)
        for level in ("L1", "L2")
        for name in names
    )


def run(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> InsertionAttemptsResult:
    """Reproduce Figure 10 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    runner = runner if runner is not None else serial_runner()
    report = runner.run(grid(names, scale, measure_accesses, seed))
    shared: Dict[str, float] = {}
    private: Dict[str, float] = {}
    for level, results in (("L1", shared), ("L2", private)):
        for name in names:
            point = report.result_for(_spec(name, level, scale, measure_accesses, seed))
            results[name] = point.average_insertion_attempts
    return InsertionAttemptsResult(shared_l2=shared, private_l2=private)


#: Column headers naming the Section 5.3 designs behind each configuration.
_CONFIG_LABELS = {
    "Shared L2": "Shared L2 (4-way, 1x)",
    "Private L2": "Private L2 (3-way, 1.5x)",
}


def format_table(result: InsertionAttemptsResult) -> str:
    frame = SweepFrame.from_rows(
        {"workload": name, "config": _CONFIG_LABELS[config], "attempts": value}
        for config, values in result.configurations().items()
        for name, value in values.items()
    )
    return frame.pivot(
        index="workload",
        columns="config",
        value="attempts",
        index_label="Workload",
        column_order=tuple(_CONFIG_LABELS.values()),
        default=0.0,
        fmt=lambda value: f"{value:.2f}",
    ).render(title="Figure 10: Cuckoo directory average insertion attempts")
