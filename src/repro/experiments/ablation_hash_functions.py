"""Section 5.5 — hash function selection ablation.

The paper compares the cheap Seznec–Bodin skewing functions against strong
("cryptographic") hash functions and finds that for reasonably provisioned
Cuckoo directories the expensive functions buy essentially nothing, while
for severely under-provisioned designs they reduce the (already
unacceptable) forced-invalidation rate by orders of magnitude.

This ablation replays one workload against Cuckoo directories that differ
only in their hash family, at a well-provisioned and an under-provisioned
design point, and reports the average insertion attempts and forced
invalidation rate for each combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.frame import Column, SweepFrame
from repro.analysis.tables import format_percentage
from repro.config import CacheLevel
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common

__all__ = ["HashAblationPoint", "run", "grid", "format_table"]


@dataclass
class HashAblationPoint:
    """Behaviour of one (provisioning, hash family) combination."""

    provisioning: float
    hash_family: str
    average_insertion_attempts: float
    forced_invalidation_rate: float


def _spec(
    workload: str,
    tracked_level: CacheLevel,
    ways: int,
    provisioning: float,
    family: str,
    scale: int,
    measure_accesses: int,
    seed: int,
) -> RunSpec:
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=ways,
        provisioning=provisioning,
        hash_family=family,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    workload: str = "Oracle",
    tracked_level: CacheLevel = CacheLevel.L1,
    ways: int = 4,
    provisionings: Sequence[float] = (1.0, 0.5),
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The ablation sweep: (provisioning × hash family) on one workload."""
    return RunGrid(
        _spec(workload, tracked_level, ways, provisioning, family, scale,
              measure_accesses, seed)
        for provisioning in provisionings
        for family in ("skewing", "strong")
    )


def run(
    workload: str = "Oracle",
    tracked_level: CacheLevel = CacheLevel.L1,
    ways: int = 4,
    provisionings: Sequence[float] = (1.0, 0.5),
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> Dict[str, HashAblationPoint]:
    """Run the ablation; returns ``{"<provisioning>/<family>": point}``."""
    runner = runner if runner is not None else serial_runner()
    report = runner.run(
        grid(workload, tracked_level, ways, provisionings, scale, measure_accesses, seed)
    )
    results: Dict[str, HashAblationPoint] = {}
    for provisioning in provisionings:
        for family in ("skewing", "strong"):
            point = report.result_for(
                _spec(workload, tracked_level, ways, provisioning, family, scale,
                      measure_accesses, seed)
            )
            key = f"{provisioning:g}x/{family}"
            results[key] = HashAblationPoint(
                provisioning=provisioning,
                hash_family=family,
                average_insertion_attempts=point.average_insertion_attempts,
                forced_invalidation_rate=point.forced_invalidation_rate,
            )
    return results


def format_table(results: Dict[str, HashAblationPoint]) -> str:
    frame = SweepFrame.from_rows(
        {
            "design": f"{point.provisioning:g}x",
            "family": point.hash_family,
            "attempts": point.average_insertion_attempts,
            "invalidations": point.forced_invalidation_rate,
        }
        for point in results.values()
    )
    return frame.render(
        [
            Column("Design point", "design"),
            Column("Hash family", "family"),
            Column("Avg insertion attempts", "attempts", lambda value: f"{value:.2f}"),
            Column(
                "Invalidation rate",
                "invalidations",
                lambda value: format_percentage(value, digits=3),
            ),
        ],
        title="Section 5.5: hash function selection ablation",
    )
