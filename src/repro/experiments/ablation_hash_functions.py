"""Section 5.5 — hash function selection ablation.

The paper compares the cheap Seznec–Bodin skewing functions against strong
("cryptographic") hash functions and finds that for reasonably provisioned
Cuckoo directories the expensive functions buy essentially nothing, while
for severely under-provisioned designs they reduce the (already
unacceptable) forced-invalidation rate by orders of magnitude.

This ablation replays one workload against Cuckoo directories that differ
only in their hash family, at a well-provisioned and an under-provisioned
design point, and reports the average insertion attempts and forced
invalidation rate for each combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel
from repro.core.cuckoo_directory import CuckooDirectory
from repro.experiments import common
from repro.hashing.skewing import SkewingHashFamily
from repro.hashing.strong import StrongHashFamily
from repro.workloads.suite import get_workload

__all__ = ["HashAblationPoint", "run", "format_table"]


@dataclass
class HashAblationPoint:
    """Behaviour of one (provisioning, hash family) combination."""

    provisioning: float
    hash_family: str
    average_insertion_attempts: float
    forced_invalidation_rate: float


def _factory(system, ways: int, provisioning: float, family: str):
    sets = common.cuckoo_factory(system, ways=ways, provisioning=provisioning)(1, 0).num_sets

    def make(num_caches: int, slice_id: int):
        if family == "skewing":
            hashes = SkewingHashFamily(ways, sets)
        else:
            hashes = StrongHashFamily(ways, sets, seed=slice_id + 1)
        return CuckooDirectory(
            num_caches=num_caches, num_sets=sets, num_ways=ways, hash_family=hashes
        )

    return make


def run(
    workload: str = "Oracle",
    tracked_level: CacheLevel = CacheLevel.L1,
    ways: int = 4,
    provisionings: Sequence[float] = (1.0, 0.5),
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> Dict[str, HashAblationPoint]:
    """Run the ablation; returns ``{"<provisioning>/<family>": point}``."""
    system = common.scaled_system(tracked_level, scale=scale)
    load = get_workload(workload)
    results: Dict[str, HashAblationPoint] = {}
    for provisioning in provisionings:
        for family in ("skewing", "strong"):
            factory = _factory(system, ways, provisioning, family)
            run_result = common.run_workload(
                load, system, factory, measure_accesses=measure_accesses, seed=seed
            )
            stats = run_result.result.directory_stats
            key = f"{provisioning:g}x/{family}"
            results[key] = HashAblationPoint(
                provisioning=provisioning,
                hash_family=family,
                average_insertion_attempts=stats.average_insertion_attempts,
                forced_invalidation_rate=stats.forced_invalidation_rate,
            )
    return results


def format_table(results: Dict[str, HashAblationPoint]) -> str:
    headers = ["Design point", "Hash family", "Avg insertion attempts", "Invalidation rate"]
    rows = [
        [
            f"{point.provisioning:g}x",
            point.hash_family,
            f"{point.average_insertion_attempts:.2f}",
            format_percentage(point.forced_invalidation_rate, digits=3),
        ]
        for point in results.values()
    ]
    return render_table(
        headers, rows, title="Section 5.5: hash function selection ablation"
    )
