"""Figure 13 — power and area comparison of directory organizations.

Analytical projection, for both the Shared-L2 and Private-L2 scenarios, of
the per-core directory energy (relative to a 1 MB L2 tag lookup) and area
(relative to a 1 MB L2 data array) for every organization in the paper's
comparison: Duplicate-Tag, Tagless, Sparse 8x In-Cache, Sparse 8x
Hierarchical, Sparse 8x Coarse, Cuckoo Hierarchical and Cuckoo Coarse,
from 16 to 1024 cores.

The headline claims this reproduces:

* the Cuckoo organizations are several times more area-efficient than the
  equivalently encoded Sparse 8x organizations (the over-provisioning
  factor), approaching 7x;
* Cuckoo energy stays nearly flat with core count while Duplicate-Tag and
  Tagless energy grows linearly per core, making Cuckoo orders of
  magnitude more energy-efficient at 1024 cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.frame import Column, SweepFrame
from repro.energy.model import (
    FIGURE13_ORGANIZATIONS,
    ScalingScenario,
    scaling_table,
)
from repro.experiments.fig04_scalability import (
    DEFAULT_CORE_COUNTS,
    ScalabilityResult,
    scaling_sections,
)

__all__ = ["run", "format_table", "headline_ratios"]


def run(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    organizations: Sequence[str] = tuple(FIGURE13_ORGANIZATIONS),
) -> Dict[str, ScalabilityResult]:
    """Reproduce Figure 13 for both scenarios."""
    results: Dict[str, ScalabilityResult] = {}
    for name, scenario in (
        ("Shared-L2", ScalingScenario.shared_l2()),
        ("Private-L2", ScalingScenario.private_l2()),
    ):
        series = scaling_table(organizations, scenario, core_counts)
        results[name] = ScalabilityResult(
            scenario_name=name,
            core_counts=list(core_counts),
            series=series,
        )
    return results


def headline_ratios(results: Dict[str, ScalabilityResult]) -> Dict[str, float]:
    """The paper's headline comparisons, computed from the model.

    * ``tagless_energy_ratio_1024`` — Tagless energy / Cuckoo Coarse energy
      at 1024 cores ("up to 80x more power-efficient than Tagless");
    * ``sparse_area_ratio_1024`` — Sparse 8x Coarse area / Cuckoo Coarse
      area at 1024 cores ("seven times more area-efficient than Sparse");
    * ``duplicate_tag_energy_ratio_16`` — Duplicate-Tag energy / Cuckoo
      Coarse energy at 16 cores ("up to 16x more energy-efficient even at
      16 cores");
    * ``sparse_area_ratio_16`` — Sparse 8x Coarse area / Cuckoo Coarse
      area at 16 cores ("up to 6x more area-efficient at 16 cores").

    When the results were computed for a reduced set of core counts, the
    smallest and largest available counts stand in for 16 and 1024.
    """
    shared = results["Shared-L2"]
    private = results["Private-L2"]
    smallest = min(shared.core_counts)
    largest = max(shared.core_counts)

    def ratio(result: ScalabilityResult, metric: str, numerator: str,
              denominator: str, cores: int) -> float:
        num = result.series[numerator][cores][metric]
        den = result.series[denominator][cores][metric]
        return num / den if den else float("inf")

    return {
        "tagless_energy_ratio_1024": max(
            ratio(shared, "energy", "Tagless", "Cuckoo Coarse", largest),
            ratio(private, "energy", "Tagless", "Cuckoo Coarse", largest),
        ),
        "sparse_area_ratio_1024": max(
            ratio(shared, "area", "Sparse 8x Coarse", "Cuckoo Coarse", largest),
            ratio(private, "area", "Sparse 8x Coarse", "Cuckoo Coarse", largest),
        ),
        "duplicate_tag_energy_ratio_16": max(
            ratio(shared, "energy", "Duplicate-Tag", "Cuckoo Coarse", smallest),
            ratio(private, "energy", "Duplicate-Tag", "Cuckoo Coarse", smallest),
        ),
        "sparse_area_ratio_16": max(
            ratio(shared, "area", "Sparse 8x Coarse", "Cuckoo Coarse", smallest),
            ratio(private, "area", "Sparse 8x Coarse", "Cuckoo Coarse", smallest),
        ),
    }


def format_table(results: Dict[str, ScalabilityResult]) -> str:
    sections: List[str] = scaling_sections(results, "Figure 13")
    ratios = SweepFrame.from_rows(
        {"comparison": key, "value": value}
        for key, value in headline_ratios(results).items()
    )
    sections.append(
        ratios.render(
            [
                Column("Headline comparison", "comparison"),
                Column("Model value", "value", lambda value: f"{value:.1f}x"),
            ]
        )
    )
    return "\n\n".join(sections)
