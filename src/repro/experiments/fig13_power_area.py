"""Figure 13 — power and area comparison of directory organizations.

Analytical projection, for both the Shared-L2 and Private-L2 scenarios, of
the per-core directory energy (relative to a 1 MB L2 tag lookup) and area
(relative to a 1 MB L2 data array) for every organization in the paper's
comparison: Duplicate-Tag, Tagless, Sparse 8x In-Cache, Sparse 8x
Hierarchical, Sparse 8x Coarse, Cuckoo Hierarchical and Cuckoo Coarse,
from 16 to 1024 cores.

The headline claims this reproduces:

* the Cuckoo organizations are several times more area-efficient than the
  equivalently encoded Sparse 8x organizations (the over-provisioning
  factor), approaching 7x;
* Cuckoo energy stays nearly flat with core count while Duplicate-Tag and
  Tagless energy grows linearly per core, making Cuckoo orders of
  magnitude more energy-efficient at 1024 cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.tables import format_percentage, render_table
from repro.energy.model import (
    FIGURE13_ORGANIZATIONS,
    ScalingScenario,
    scaling_table,
)
from repro.experiments.fig04_scalability import DEFAULT_CORE_COUNTS, ScalabilityResult

__all__ = ["run", "format_table", "headline_ratios"]


def run(
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    organizations: Sequence[str] = tuple(FIGURE13_ORGANIZATIONS),
) -> Dict[str, ScalabilityResult]:
    """Reproduce Figure 13 for both scenarios."""
    results: Dict[str, ScalabilityResult] = {}
    for name, scenario in (
        ("Shared-L2", ScalingScenario.shared_l2()),
        ("Private-L2", ScalingScenario.private_l2()),
    ):
        series = scaling_table(organizations, scenario, core_counts)
        results[name] = ScalabilityResult(
            scenario_name=name,
            core_counts=list(core_counts),
            series=series,
        )
    return results


def headline_ratios(results: Dict[str, ScalabilityResult]) -> Dict[str, float]:
    """The paper's headline comparisons, computed from the model.

    * ``tagless_energy_ratio_1024`` — Tagless energy / Cuckoo Coarse energy
      at 1024 cores ("up to 80x more power-efficient than Tagless");
    * ``sparse_area_ratio_1024`` — Sparse 8x Coarse area / Cuckoo Coarse
      area at 1024 cores ("seven times more area-efficient than Sparse");
    * ``duplicate_tag_energy_ratio_16`` — Duplicate-Tag energy / Cuckoo
      Coarse energy at 16 cores ("up to 16x more energy-efficient even at
      16 cores");
    * ``sparse_area_ratio_16`` — Sparse 8x Coarse area / Cuckoo Coarse
      area at 16 cores ("up to 6x more area-efficient at 16 cores").

    When the results were computed for a reduced set of core counts, the
    smallest and largest available counts stand in for 16 and 1024.
    """
    shared = results["Shared-L2"]
    private = results["Private-L2"]
    smallest = min(shared.core_counts)
    largest = max(shared.core_counts)

    def ratio(result: ScalabilityResult, metric: str, numerator: str,
              denominator: str, cores: int) -> float:
        num = result.series[numerator][cores][metric]
        den = result.series[denominator][cores][metric]
        return num / den if den else float("inf")

    return {
        "tagless_energy_ratio_1024": max(
            ratio(shared, "energy", "Tagless", "Cuckoo Coarse", largest),
            ratio(private, "energy", "Tagless", "Cuckoo Coarse", largest),
        ),
        "sparse_area_ratio_1024": max(
            ratio(shared, "area", "Sparse 8x Coarse", "Cuckoo Coarse", largest),
            ratio(private, "area", "Sparse 8x Coarse", "Cuckoo Coarse", largest),
        ),
        "duplicate_tag_energy_ratio_16": max(
            ratio(shared, "energy", "Duplicate-Tag", "Cuckoo Coarse", smallest),
            ratio(private, "energy", "Duplicate-Tag", "Cuckoo Coarse", smallest),
        ),
        "sparse_area_ratio_16": max(
            ratio(shared, "area", "Sparse 8x Coarse", "Cuckoo Coarse", smallest),
            ratio(private, "area", "Sparse 8x Coarse", "Cuckoo Coarse", smallest),
        ),
    }


def format_table(results: Dict[str, ScalabilityResult]) -> str:
    sections: List[str] = []
    for scenario_name, result in results.items():
        for metric, reference in (
            ("energy", "1MB L2 tag lookup"),
            ("area", "1MB L2 data array"),
        ):
            headers = ["Cores"] + list(result.series.keys())
            rows = []
            for cores in result.core_counts:
                row: List[object] = [cores]
                for organization in result.series:
                    value = result.series[organization][cores][metric]
                    row.append(format_percentage(value, digits=1))
                rows.append(row)
            sections.append(
                render_table(
                    headers,
                    rows,
                    title=(
                        f"Figure 13 ({scenario_name}): per-core directory {metric} "
                        f"relative to {reference}"
                    ),
                )
            )
    ratios = headline_ratios(results)
    ratio_rows = [[key, f"{value:.1f}x"] for key, value in ratios.items()]
    sections.append(
        render_table(["Headline comparison", "Model value"], ratio_rows)
    )
    return "\n\n".join(sections)
