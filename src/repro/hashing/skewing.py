"""Seznec–Bodin skewing hash functions.

The skewed-associative cache [Seznec & Bodin, PARLE '93] indexes each way
with a different function built from a handful of XOR gates over two
address bit-fields.  The Cuckoo directory paper uses exactly this family
for its default design (Section 5.5) because it costs only "several levels
of logic" in hardware.

The construction implemented here follows the published family:

* split the block address (above the offset bits) into two ``n``-bit
  fields ``A1`` (low) and ``A2`` (high), where ``n`` is the number of
  index bits;
* way *i* is indexed by ``sigma^i(A1) XOR A2`` where ``sigma`` is a
  single-cycle permutation of the ``n`` index bits (a rotate-and-flip
  feedback function in the original paper; we use a bit rotation combined
  with a conditional bit flip, which has the same hardware cost and the
  same inter-way decorrelation property).

Because ``sigma`` permutes only ``n``-bit values and ``n`` is small, every
power of sigma a way needs is precomputed once as a lookup table of
``num_sets`` entries; the per-address work then collapses to three masked
shifts, two table loads and two XORs, with no Python-level loop.  This is
the hot function of the whole simulator (every cuckoo lookup calls it once
per way), so the tables — and the way-specialised closures built from them
by :meth:`SkewingHashFamily.way_function` — matter.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from repro.hashing.base import HashFamily

__all__ = ["SkewingHashFamily", "skew_sigma"]

#: Above this set count the sigma lookup tables are not materialised (the
#: one-time build cost and memory would dwarf any per-call saving).
_MAX_TABLE_SETS = 1 << 18


def skew_sigma(value: int, bits: int) -> int:
    """One application of the skewing permutation ``sigma`` on ``bits`` bits.

    The permutation rotates the field left by one and XORs the wrapped-around
    most-significant bit into bit 1, the classic "shuffle with feedback" used
    by skewed-associative caches.  It is a bijection on ``bits``-bit values.
    """
    if bits <= 0:
        return 0
    mask = (1 << bits) - 1
    value &= mask
    msb = (value >> (bits - 1)) & 1
    rotated = ((value << 1) | msb) & mask
    if bits >= 2:
        rotated ^= msb << 1
    return rotated


class SkewingHashFamily(HashFamily):
    """The XOR-based skewing family used by the paper's default design.

    Way ``i`` maps address ``a`` (block address, offset bits already
    stripped by the caller or ignored via ``offset_bits``) to::

        sigma^i(A1) ^ sigma^(i // 2)(A2) ^ A3   mod num_sets

    where ``A1``, ``A2`` and ``A3`` are consecutive index-sized bit-fields
    of the address.  Applying ``sigma`` a different number of times per way
    keeps the functions pairwise distinct while remaining a few XOR levels
    deep.
    """

    def __init__(self, num_ways: int, num_sets: int, offset_bits: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        if num_sets & (num_sets - 1):
            raise ValueError("SkewingHashFamily requires a power-of-two set count")
        if offset_bits < 0:
            raise ValueError("offset_bits must be non-negative")
        self._offset_bits = offset_bits
        self._sigma_tables = self._build_sigma_tables()
        # Numpy copies of the sigma tables, built lazily on the first
        # batch_indices_array call (only the batched drain needs them).
        self._sigma_arrays = None

    def _build_sigma_tables(self) -> List[List[int]]:
        """``tables[p][v] == sigma^p(v)`` for every power any way uses."""
        bits = self.index_bits
        if bits == 0 or self._num_sets > _MAX_TABLE_SETS:
            return []
        tables = [list(range(self._num_sets))]
        for _ in range(1, self._num_ways):
            previous = tables[-1]
            tables.append([skew_sigma(value, bits) for value in previous])
        return tables

    @property
    def offset_bits(self) -> int:
        return self._offset_bits

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        bits = self.index_bits
        if bits == 0:
            return 0
        block = address >> self._offset_bits
        mask = (1 << bits) - 1
        field1 = block & mask
        field2 = (block >> bits) & mask
        field3 = (block >> (2 * bits)) & mask
        if self._sigma_tables:
            field1 = self._sigma_tables[way][field1]
            field2 = self._sigma_tables[way // 2][field2]
        else:
            for _ in range(way):
                field1 = skew_sigma(field1, bits)
            for _ in range(way // 2):
                field2 = skew_sigma(field2, bits)
        return (field1 ^ field2 ^ field3) & mask

    def way_function(self, way: int) -> Callable[[int], int]:
        """A trusted per-way closure with the sigma tables bound as defaults."""
        self._check_way(way)
        bits = self.index_bits
        if bits == 0:
            return lambda address: 0
        if not self._sigma_tables:
            index = self.index
            return lambda address: index(way, address)
        mask = (1 << bits) - 1
        bits2 = 2 * bits

        def way_index(
            address: int,
            _t1: List[int] = self._sigma_tables[way],
            _t2: List[int] = self._sigma_tables[way // 2],
            _mask: int = mask,
            _bits: int = bits,
            _bits2: int = bits2,
            _offset: int = self._offset_bits,
        ) -> int:
            block = address >> _offset
            return (
                _t1[block & _mask]
                ^ _t2[(block >> _bits) & _mask]
                ^ ((block >> _bits2) & _mask)
            )

        return way_index

    def indices_function(self) -> Callable[[int], List[int]]:
        """Fused all-ways indexer: extract the three bit-fields once, then
        gather from each way's sigma tables (generated straight-line code)."""
        bits = self.index_bits
        if bits == 0:
            ways = self._num_ways
            return lambda address: [0] * ways
        if not self._sigma_tables:
            return super().indices_function()
        mask = (1 << bits) - 1
        namespace = {
            f"_t1_{way}": self._sigma_tables[way] for way in range(self._num_ways)
        }
        namespace.update(
            {f"_t2_{way}": self._sigma_tables[way // 2] for way in range(self._num_ways)}
        )
        terms = ", ".join(
            f"_t1_{way}[f1] ^ _t2_{way}[f2] ^ f3" for way in range(self._num_ways)
        )
        source = (
            "def _all_indices(address):\n"
            f"    block = address >> {self._offset_bits}\n"
            f"    f1 = block & {mask}\n"
            f"    f2 = (block >> {bits}) & {mask}\n"
            f"    f3 = (block >> {2 * bits}) & {mask}\n"
            f"    return [{terms}]\n"
        )
        exec(source, namespace)  # noqa: S102 - constants and tables only
        return namespace["_all_indices"]

    def batch_indices(self, addresses: Sequence[int]) -> List[Tuple[int, ...]]:
        """Vectorized candidate indices: three shifts + two table gathers."""
        bits = self.index_bits
        if _np is None or bits == 0 or not self._sigma_tables:
            return super().batch_indices(addresses)
        blocks = _np.asarray(addresses, dtype=_np.int64) >> self._offset_bits
        mask = (1 << bits) - 1
        field1 = blocks & mask
        field2 = (blocks >> bits) & mask
        field3 = (blocks >> (2 * bits)) & mask
        tables = [_np.asarray(table, dtype=_np.int64) for table in self._sigma_tables]
        per_way = [
            tables[way][field1] ^ tables[way // 2][field2] ^ field3
            for way in range(self._num_ways)
        ]
        return list(zip(*(column.tolist() for column in per_way)))

    def batch_indices_array(self, addresses):
        """Array twin of :meth:`batch_indices`: ``(num_ways, n)`` int64."""
        bits = self.index_bits
        if _np is None:
            return None
        if bits == 0 or not self._sigma_tables:
            return super().batch_indices_array(addresses)
        blocks = _np.asarray(addresses, dtype=_np.int64) >> self._offset_bits
        mask = (1 << bits) - 1
        field1 = blocks & mask
        field2 = (blocks >> bits) & mask
        field3 = (blocks >> (2 * bits)) & mask
        tables = self._sigma_arrays
        if tables is None:
            tables = [
                _np.asarray(table, dtype=_np.int64)
                for table in self._sigma_tables
            ]
            self._sigma_arrays = tables
        out = _np.empty((self._num_ways, blocks.size), dtype=_np.int64)
        for way in range(self._num_ways):
            _np.bitwise_xor(
                tables[way][field1], tables[way // 2][field2], out=out[way]
            )
            out[way] ^= field3
        return out

    def batch_key(self) -> object:
        """Skewing indices are fully determined by the geometry."""
        return ("skew", self._num_ways, self._num_sets, self._offset_bits)
