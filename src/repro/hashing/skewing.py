"""Seznec–Bodin skewing hash functions.

The skewed-associative cache [Seznec & Bodin, PARLE '93] indexes each way
with a different function built from a handful of XOR gates over two
address bit-fields.  The Cuckoo directory paper uses exactly this family
for its default design (Section 5.5) because it costs only "several levels
of logic" in hardware.

The construction implemented here follows the published family:

* split the block address (above the offset bits) into two ``n``-bit
  fields ``A1`` (low) and ``A2`` (high), where ``n`` is the number of
  index bits;
* way *i* is indexed by ``sigma^i(A1) XOR A2`` where ``sigma`` is a
  single-cycle permutation of the ``n`` index bits (a rotate-and-flip
  feedback function in the original paper; we use a bit rotation combined
  with a conditional bit flip, which has the same hardware cost and the
  same inter-way decorrelation property).
"""

from __future__ import annotations

from repro.hashing.base import HashFamily

__all__ = ["SkewingHashFamily", "skew_sigma"]


def skew_sigma(value: int, bits: int) -> int:
    """One application of the skewing permutation ``sigma`` on ``bits`` bits.

    The permutation rotates the field left by one and XORs the wrapped-around
    most-significant bit into bit 1, the classic "shuffle with feedback" used
    by skewed-associative caches.  It is a bijection on ``bits``-bit values.
    """
    if bits <= 0:
        return 0
    mask = (1 << bits) - 1
    value &= mask
    msb = (value >> (bits - 1)) & 1
    rotated = ((value << 1) | msb) & mask
    if bits >= 2:
        rotated ^= msb << 1
    return rotated


class SkewingHashFamily(HashFamily):
    """The XOR-based skewing family used by the paper's default design.

    Way ``i`` maps address ``a`` (block address, offset bits already
    stripped by the caller or ignored via ``offset_bits``) to::

        sigma^i(A1) ^ sigma^(i // 2)(A2)   mod num_sets

    where ``A1`` and ``A2`` are consecutive index-sized bit-fields of the
    address.  Applying ``sigma`` a different number of times per way keeps
    the functions pairwise distinct while remaining a few XOR levels deep.
    """

    def __init__(self, num_ways: int, num_sets: int, offset_bits: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        if num_sets & (num_sets - 1):
            raise ValueError("SkewingHashFamily requires a power-of-two set count")
        if offset_bits < 0:
            raise ValueError("offset_bits must be non-negative")
        self._offset_bits = offset_bits

    @property
    def offset_bits(self) -> int:
        return self._offset_bits

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        bits = self.index_bits
        if bits == 0:
            return 0
        block = address >> self._offset_bits
        mask = (1 << bits) - 1
        field1 = block & mask
        field2 = (block >> bits) & mask
        field3 = (block >> (2 * bits)) & mask
        for _ in range(way):
            field1 = skew_sigma(field1, bits)
        for _ in range(way // 2):
            field2 = skew_sigma(field2, bits)
        return (field1 ^ field2 ^ field3) & mask
