"""Common interface for directory-indexing hash families."""

from __future__ import annotations

import abc
import math
from typing import Callable, List, Sequence, Tuple

__all__ = ["HashFunction", "HashFamily"]


class HashFunction(abc.ABC):
    """Maps a block address to a set index in ``[0, num_sets)``."""

    def __init__(self, num_sets: int) -> None:
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self._num_sets = num_sets

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @abc.abstractmethod
    def __call__(self, address: int) -> int:
        """Return the set index for ``address``."""


class HashFamily(abc.ABC):
    """An ordered collection of hash functions, one per directory way.

    A *d*-way cuckoo (or skewed) structure indexes way *i* with function
    *i*; the family guarantees the functions are pairwise different so
    conflicting addresses in one way rarely conflict in another.
    """

    def __init__(self, num_ways: int, num_sets: int) -> None:
        if num_ways <= 0:
            raise ValueError("num_ways must be positive")
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self._num_ways = num_ways
        self._num_sets = num_sets
        self._index_bits = int(math.log2(num_sets)) if num_sets > 1 else 0

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def index_bits(self) -> int:
        """Number of index bits when ``num_sets`` is a power of two."""
        return self._index_bits

    @abc.abstractmethod
    def index(self, way: int, address: int) -> int:
        """Return the set index of ``address`` in ``way``."""

    def way_function(self, way: int) -> Callable[[int], int]:
        """A single-argument callable computing ``index(way, address)``.

        Hot paths (the cuckoo displacement walk, skewed lookups) bind one
        callable per way once and then pay no per-call way dispatch or
        attribute lookups.  The returned callable is a *trusted* fast path:
        it assumes non-negative addresses and skips argument validation.
        Subclasses override this with closures that inline their mixing
        arithmetic.
        """
        self._check_way(way)
        index = self.index
        return lambda address: index(way, address)

    def way_functions(self) -> List[Callable[[int], int]]:
        """One :meth:`way_function` per way, in way order."""
        return [self.way_function(way) for way in range(self._num_ways)]

    def indices_function(self) -> Callable[[int], List[int]]:
        """A single-argument callable computing all per-way indices at once.

        The cuckoo table calls this once per key instead of one way
        function per way; families whose ways share sub-expressions (the
        skewing family's address bit-fields) override it with a fused
        implementation that factors the shared work out.  Like
        :meth:`way_function`, the result is a trusted fast path that skips
        argument validation.
        """
        functions = self.way_functions()
        return lambda address: [fn(address) for fn in functions]

    def indices(self, address: int) -> List[int]:
        """Return the candidate set index of ``address`` for every way."""
        return [self.index(way, address) for way in range(self._num_ways)]

    def batch_indices(self, addresses: Sequence[int]) -> List[Tuple[int, ...]]:
        """Candidate indices for a batch of addresses, one tuple per address.

        Equivalent to ``[tuple(self.indices(a)) for a in addresses]`` but
        overridable with vectorized implementations (numpy in the skewing
        and strong families), which is what makes precomputing the Figure 7
        sweep's candidate indices cheap.
        """
        functions = self.way_functions()
        return [tuple(fn(address) for fn in functions) for address in addresses]

    def batch_indices_array(self, addresses):
        """Candidate indices as a ``(num_ways, n)`` numpy int64 array.

        Array-shaped twin of :meth:`batch_indices` for the batched miss
        drain, which slices per-way columns instead of per-address tuples.
        The generic implementation transposes :meth:`batch_indices`;
        vectorized families override it to skip the tuple round-trip.
        Returns ``None`` when numpy is unavailable.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is baked in
            return None
        rows = self.batch_indices(addresses)
        if not rows:
            return np.empty((self._num_ways, 0), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64).T

    def batch_key(self) -> object:
        """Value-identity key: equal keys guarantee identical index functions.

        Directory slices are constructed with one family instance each; the
        batched drain hashes every drained address in a single call when all
        slices' families report the same key.  ``None`` (the default) means
        "unknown — never share".
        """
        return None

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self._num_ways:
            raise IndexError(f"way {way} out of range [0, {self._num_ways})")


def validate_distinctness(family: HashFamily, addresses: Sequence[int]) -> float:
    """Fraction of addresses whose candidate indices are not all identical.

    Diagnostic helper used by tests: a good family should place almost every
    address at distinct indices across ways (when ``num_sets > 1``).
    """
    if not addresses:
        return 1.0
    distinct = 0
    for address in addresses:
        indices = family.indices(address)
        if len(set(indices)) > 1:
            distinct += 1
    return distinct / len(addresses)
