"""Strong ("cryptographic") hash functions.

Figure 7 of the paper characterises d-ary cuckoo hashing with strong
cryptographic hash functions so the measured insertion behaviour reflects
the hash-table algorithm rather than hash-function bias.  Section 5.5 then
shows that in practice the cheap skewing functions are sufficient.

A full cryptographic hash is unnecessary for that purpose; what matters is
that the per-way functions are statistically independent and uniform.  We
use the SplitMix64 finaliser (a well-studied 64-bit avalanche mixer) with a
distinct per-way seed, which passes standard avalanche tests and is orders
of magnitude faster in Python than hashlib digests.  A SHA-256 based family
is also provided for tests that want a reference.

The scalar mixer is inlined into the per-way closures returned by
:meth:`StrongHashFamily.way_function` (the cuckoo walk's hot path), and
:meth:`StrongHashFamily.batch_indices` runs the same finaliser over numpy
``uint64`` arrays — bit-identical to the scalar path because ``uint64``
arithmetic wraps exactly like the explicit 64-bit masking.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

from repro.hashing.base import HashFamily

__all__ = ["mix64", "StrongHashFamily", "Sha256HashFamily"]

_MASK64 = (1 << 64) - 1

# Large odd constants from the SplitMix64 / Murmur3 finalisers.
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """SplitMix64 finaliser: a 64-bit bijective avalanche mixer."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_MULT_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_MULT_2) & _MASK64
    value ^= value >> 31
    return value


class StrongHashFamily(HashFamily):
    """Per-way SplitMix64-based hash functions with independent seeds."""

    def __init__(self, num_ways: int, num_sets: int, seed: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        self._seeds = [
            mix64(seed + (way + 1) * _GOLDEN_GAMMA) for way in range(num_ways)
        ]

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        return mix64(address ^ self._seeds[way]) % self._num_sets

    def way_function(self, way: int) -> Callable[[int], int]:
        """A trusted per-way closure with the mixer arithmetic inlined."""
        self._check_way(way)

        def way_index(
            address: int,
            _seed: int = self._seeds[way],
            _sets: int = self._num_sets,
            _m1: int = _MIX_MULT_1,
            _m2: int = _MIX_MULT_2,
            _mask: int = _MASK64,
        ) -> int:
            value = (address ^ _seed) & _mask
            value ^= value >> 30
            value = (value * _m1) & _mask
            value ^= value >> 27
            value = (value * _m2) & _mask
            value ^= value >> 31
            return value % _sets

        return way_index

    def indices_function(self) -> Callable[[int], List[int]]:
        """Fused all-ways indexer: one call running the straight-line mixer
        for every way (generated code, constants inlined)."""
        lines = ["def _all_indices(address):"]
        for way, seed in enumerate(self._seeds):
            lines.append(f"    v{way} = (address ^ {seed}) & {_MASK64}")
            lines.append(f"    v{way} ^= v{way} >> 30")
            lines.append(f"    v{way} = (v{way} * {_MIX_MULT_1}) & {_MASK64}")
            lines.append(f"    v{way} ^= v{way} >> 27")
            lines.append(f"    v{way} = (v{way} * {_MIX_MULT_2}) & {_MASK64}")
            lines.append(f"    v{way} ^= v{way} >> 31")
        terms = ", ".join(
            f"v{way} % {self._num_sets}" for way in range(self._num_ways)
        )
        lines.append(f"    return [{terms}]")
        namespace: dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - constants only
        return namespace["_all_indices"]

    def batch_indices(self, addresses: Sequence[int]) -> List[Tuple[int, ...]]:
        """Vectorized SplitMix64 over ``uint64`` arrays, one pass per way."""
        if _np is None:
            return super().batch_indices(addresses)
        values = _np.asarray(addresses, dtype=_np.uint64)
        sets = _np.uint64(self._num_sets)
        mult1 = _np.uint64(_MIX_MULT_1)
        mult2 = _np.uint64(_MIX_MULT_2)
        s30, s27, s31 = _np.uint64(30), _np.uint64(27), _np.uint64(31)
        per_way = []
        with _np.errstate(over="ignore"):
            for seed in self._seeds:
                mixed = values ^ _np.uint64(seed)
                mixed = mixed ^ (mixed >> s30)
                mixed = mixed * mult1
                mixed = mixed ^ (mixed >> s27)
                mixed = mixed * mult2
                mixed = mixed ^ (mixed >> s31)
                per_way.append((mixed % sets).tolist())
        return list(zip(*per_way))

    def batch_indices_array(self, addresses):
        """Array twin of :meth:`batch_indices`: ``(num_ways, n)`` int64."""
        if _np is None:
            return None
        values = _np.asarray(addresses, dtype=_np.uint64)
        sets = _np.uint64(self._num_sets)
        mult1 = _np.uint64(_MIX_MULT_1)
        mult2 = _np.uint64(_MIX_MULT_2)
        s30, s27, s31 = _np.uint64(30), _np.uint64(27), _np.uint64(31)
        out = _np.empty((self._num_ways, values.size), dtype=_np.int64)
        with _np.errstate(over="ignore"):
            for way, seed in enumerate(self._seeds):
                mixed = values ^ _np.uint64(seed)
                mixed = mixed ^ (mixed >> s30)
                mixed = mixed * mult1
                mixed = mixed ^ (mixed >> s27)
                mixed = mixed * mult2
                mixed = mixed ^ (mixed >> s31)
                out[way] = (mixed % sets).astype(_np.int64)
        return out

    def batch_key(self) -> object:
        """Strong indices are determined by the geometry plus the seeds."""
        return ("strong", self._num_ways, self._num_sets, tuple(self._seeds))


class Sha256HashFamily(HashFamily):
    """Reference family based on SHA-256 (slow; used only by tests)."""

    def __init__(self, num_ways: int, num_sets: int, seed: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        self._seed = seed

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        payload = f"{self._seed}:{way}:{address}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little") % self._num_sets
