"""Strong ("cryptographic") hash functions.

Figure 7 of the paper characterises d-ary cuckoo hashing with strong
cryptographic hash functions so the measured insertion behaviour reflects
the hash-table algorithm rather than hash-function bias.  Section 5.5 then
shows that in practice the cheap skewing functions are sufficient.

A full cryptographic hash is unnecessary for that purpose; what matters is
that the per-way functions are statistically independent and uniform.  We
use the SplitMix64 finaliser (a well-studied 64-bit avalanche mixer) with a
distinct per-way seed, which passes standard avalanche tests and is orders
of magnitude faster in Python than hashlib digests.  A SHA-256 based family
is also provided for tests that want a reference.
"""

from __future__ import annotations

import hashlib

from repro.hashing.base import HashFamily

__all__ = ["mix64", "StrongHashFamily", "Sha256HashFamily"]

_MASK64 = (1 << 64) - 1

# Large odd constants from the SplitMix64 / Murmur3 finalisers.
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """SplitMix64 finaliser: a 64-bit bijective avalanche mixer."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * _MIX_MULT_1) & _MASK64
    value ^= value >> 27
    value = (value * _MIX_MULT_2) & _MASK64
    value ^= value >> 31
    return value


class StrongHashFamily(HashFamily):
    """Per-way SplitMix64-based hash functions with independent seeds."""

    def __init__(self, num_ways: int, num_sets: int, seed: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        self._seeds = [
            mix64(seed + (way + 1) * _GOLDEN_GAMMA) for way in range(num_ways)
        ]

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        return mix64(address ^ self._seeds[way]) % self._num_sets


class Sha256HashFamily(HashFamily):
    """Reference family based on SHA-256 (slow; used only by tests)."""

    def __init__(self, num_ways: int, num_sets: int, seed: int = 0) -> None:
        super().__init__(num_ways, num_sets)
        self._seed = seed

    def index(self, way: int, address: int) -> int:
        self._check_way(way)
        if address < 0:
            raise ValueError("address must be non-negative")
        payload = f"{self._seed}:{way}:{address}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little") % self._num_sets
