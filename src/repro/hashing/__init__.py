"""Hash-function families used to index directory ways.

The paper evaluates two families:

* the Seznec–Bodin *skewing* functions (a few XOR/rotate levels of logic,
  the paper's default, Section 5.5), and
* *strong* hash functions (called "cryptographic" in the paper) used to
  characterise the cuckoo hash independently of hash-function bias
  (Figure 7).

Both families implement :class:`HashFamily`: a callable per way that maps
a block address to a set index in ``[0, num_sets)``.
"""

from repro.hashing.base import HashFamily, HashFunction
from repro.hashing.skewing import SkewingHashFamily
from repro.hashing.strong import StrongHashFamily, mix64

__all__ = [
    "HashFamily",
    "HashFunction",
    "SkewingHashFamily",
    "StrongHashFamily",
    "mix64",
]
