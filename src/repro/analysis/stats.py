"""Small statistical helpers shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["geometric_mean", "bin_by", "summarize"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; zero values clamp to a tiny epsilon.

    Architecture studies conventionally summarise ratios across workloads
    with the geometric mean; clamping keeps an all-but-one-zero series from
    collapsing the summary to zero.
    """
    values = list(values)
    if not values:
        return 0.0
    epsilon = 1e-12
    log_sum = 0.0
    for value in values:
        if value < 0:
            raise ValueError("geometric mean requires non-negative values")
        log_sum += math.log(max(value, epsilon))
    return math.exp(log_sum / len(values))


def bin_by(
    pairs: Iterable[Tuple[float, float]],
    bin_width: float,
    lower: float = 0.0,
    upper: float = 1.0,
) -> Dict[float, float]:
    """Average the second element of ``pairs`` in bins of the first element.

    Used by the Figure 7 experiment to average insertion attempts over
    occupancy bins.  Returns ``{bin_center: mean_value}`` for non-empty
    bins only, in increasing bin order.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    # Number of bins actually covering [lower, upper]; the small tolerance
    # keeps float fuzz in (upper - lower) / bin_width from adding a bin.
    num_bins = max(1, math.ceil((upper - lower) / bin_width - 1e-9))
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for key, value in pairs:
        if key < lower or key > upper:
            continue
        index = int((key - lower) / bin_width)
        if index >= num_bins:
            # A key exactly on the upper edge (e.g. occupancy 1.0) belongs
            # to the last valid bin, not an overflow bin past ``upper``.
            index = num_bins - 1
        sums[index] = sums.get(index, 0.0) + value
        counts[index] = counts.get(index, 0) + 1
    result: Dict[float, float] = {}
    for index in sorted(sums):
        center = lower + (index + 0.5) * bin_width
        result[round(center, 10)] = sums[index] / counts[index]
    return result


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / count summary of a numeric sequence."""
    values = list(values)
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
