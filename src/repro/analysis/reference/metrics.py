"""Error metrics scoring reproduced series against digitized paper curves.

The reproduction substitutes synthetic workloads and scaled-down systems
for the paper's Flexus traces (see DESIGN.md), so absolute agreement with
the published figures is not expected — what the metrics quantify is how
close each series lands and, crucially, whether the paper's *orderings*
survive:

* ``geomean_relative_error`` — the multiplicative distance per point,
  summarized the way architecture studies summarize ratios;
* ``max_relative_deviation`` / ``max_absolute_deviation`` — the single
  worst point;
* ``rank_order_agreement`` — Kendall's tau-a over the common points, 1.0
  when the reproduction orders every pair the way the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "ReferenceScore",
    "geomean_relative_error",
    "max_absolute_deviation",
    "max_relative_deviation",
    "rank_order_agreement",
    "score_series",
]

#: Relative-error floor for reference values of exactly zero (a reproduced
#: value is compared against this instead of dividing by zero).
_ZERO_REFERENCE_FLOOR = 1e-9


def _relative_errors(
    pairs: Sequence[Tuple[float, float]],
) -> Sequence[float]:
    """Per-point relative error |actual - expected| / |expected|."""
    errors = []
    for actual, expected in pairs:
        denominator = abs(expected) if expected else _ZERO_REFERENCE_FLOOR
        errors.append(abs(actual - expected) / denominator)
    return errors


def geomean_relative_error(pairs: Sequence[Tuple[float, float]]) -> float:
    """Geometric mean of per-point relative errors (zero errors clamped).

    ``pairs`` holds ``(actual, expected)`` tuples.  Matches the clamping
    convention of :func:`repro.analysis.stats.geometric_mean` so a single
    exactly-reproduced point does not collapse the summary to zero.
    """
    errors = _relative_errors(pairs)
    if not errors:
        return 0.0
    epsilon = 1e-12
    log_sum = sum(math.log(max(error, epsilon)) for error in errors)
    return math.exp(log_sum / len(errors))


def max_relative_deviation(pairs: Sequence[Tuple[float, float]]) -> float:
    """The single worst relative error across the points."""
    errors = _relative_errors(pairs)
    return max(errors) if errors else 0.0


def max_absolute_deviation(pairs: Sequence[Tuple[float, float]]) -> float:
    """The single worst absolute error across the points."""
    return max((abs(a - e) for a, e in pairs), default=0.0)


def rank_order_agreement(
    actual: Mapping[str, float], expected: Mapping[str, float]
) -> float:
    """Kendall's tau-a between two series over their common keys.

    1.0 means every pair of points is ordered the same way in both series,
    -1.0 means every pair is reversed; ties in either series contribute
    zero.  Series with fewer than two common points score 1.0 (there is no
    ordering to disagree about).
    """
    keys = [key for key in expected if key in actual]
    n = len(keys)
    if n < 2:
        return 1.0
    concordant_minus_discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            da = actual[keys[i]] - actual[keys[j]]
            de = expected[keys[i]] - expected[keys[j]]
            if da * de > 0:
                concordant_minus_discordant += 1
            elif da * de < 0:
                concordant_minus_discordant -= 1
    return concordant_minus_discordant / (n * (n - 1) / 2)


@dataclass(frozen=True)
class ReferenceScore:
    """How one reproduced series compares to its digitized paper curve."""

    points: int
    geomean_relative_error: float
    max_relative_deviation: float
    max_absolute_deviation: float
    rank_order_agreement: float

    def __str__(self) -> str:
        return (
            f"{self.points} points, geomean rel err "
            f"{self.geomean_relative_error:.3f}, max dev "
            f"{self.max_relative_deviation:.3f}, rank agreement "
            f"{self.rank_order_agreement:+.2f}"
        )


def score_series(
    actual: Mapping[str, float], expected: Mapping[str, float]
) -> ReferenceScore:
    """Score a reproduced series against a reference series.

    Only keys present in *both* series participate (a narrowed sweep — a
    ``--workloads`` subset, say — is scored on its intersection with the
    digitized curve).
    """
    pairs = [
        (float(actual[key]), float(expected[key]))
        for key in expected
        if key in actual
    ]
    return ReferenceScore(
        points=len(pairs),
        geomean_relative_error=geomean_relative_error(pairs),
        max_relative_deviation=max_relative_deviation(pairs),
        max_absolute_deviation=max_absolute_deviation(pairs),
        rank_order_agreement=rank_order_agreement(actual, expected),
    )
