"""Digitized paper-figure curves and the error metrics that score them.

``curves`` holds the reference data (one :class:`FigureReference` per
digitized figure, keyed by experiment name); ``metrics`` holds the
scoring functions (geomean relative error, max deviation, rank-order
agreement).  The report CLI's ``--reference`` flag and the experiment
drivers consume both through this package.
"""

from repro.analysis.reference.curves import (
    REFERENCES,
    FigureReference,
    get_reference,
)
from repro.analysis.reference.metrics import (
    ReferenceScore,
    geomean_relative_error,
    max_absolute_deviation,
    max_relative_deviation,
    rank_order_agreement,
    score_series,
)

__all__ = [
    "FigureReference",
    "REFERENCES",
    "ReferenceScore",
    "get_reference",
    "geomean_relative_error",
    "max_absolute_deviation",
    "max_relative_deviation",
    "rank_order_agreement",
    "score_series",
]
