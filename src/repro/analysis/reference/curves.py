"""Digitized reference curves from the Cuckoo Directory paper's figures.

Values were read off the published figures (Ferdman, Lotfi-Kamran,
Balet & Falsafi, "Cuckoo Directory: A Scalable Directory for Many-Core
Systems", HPCA 2011) at roughly the precision a plot digitizer yields —
they pin the *shape and ordering* of each curve, not instrument-grade
numbers.  Every experiment driver can score its reproduced series against
these curves through :func:`get_reference` /
:meth:`FigureReference.score`, answering "how close to the paper are we?"
with the metrics of :mod:`repro.analysis.reference.metrics`.

Because the reproduction substitutes synthetic workloads and scaled-down
systems, rank-order agreement is the headline number; the relative-error
metrics quantify drift rather than gate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.analysis.reference.metrics import ReferenceScore, score_series

__all__ = ["FigureReference", "REFERENCES", "get_reference"]


@dataclass(frozen=True)
class FigureReference:
    """One digitized paper figure: labelled series of (point -> value)."""

    figure: str
    title: str
    metric: str
    unit: str
    series: Mapping[str, Mapping[str, float]]

    def score(
        self, actual: Mapping[str, Mapping[str, float]]
    ) -> Dict[str, ReferenceScore]:
        """Score reproduced series (same shape as :attr:`series`).

        Returns one :class:`ReferenceScore` per reference series present
        in ``actual``; series the reproduction did not produce are
        skipped, and each series is scored over the intersection of its
        points.
        """
        scores: Dict[str, ReferenceScore] = {}
        for label, expected in self.series.items():
            produced = actual.get(label)
            if produced:
                scores[label] = score_series(produced, expected)
        return scores


#: Figure 8 — average directory occupancy relative to the 1x worst case.
_FIG08_OCCUPANCY = FigureReference(
    figure="fig08",
    title="Figure 8 — average directory occupancy (fraction of 1x capacity)",
    metric="occupancy_vs_worst_case",
    unit="fraction",
    series={
        "Shared L2": {
            "DB2": 0.54, "Oracle": 0.56, "Qry2": 0.62, "Qry16": 0.64,
            "Qry17": 0.66, "Apache": 0.52, "Zeus": 0.50, "em3d": 0.78,
            "ocean": 0.92,
        },
        "Private L2": {
            "DB2": 0.62, "Oracle": 0.64, "Qry2": 0.72, "Qry16": 0.74,
            "Qry17": 0.76, "Apache": 0.58, "Zeus": 0.56, "em3d": 0.88,
            "ocean": 0.99,
        },
    },
)

#: Figure 9 — average insertion attempts per directory geometry (workload
#: averages; the exponential under-provisioning blow-up).
_FIG09_ATTEMPTS = FigureReference(
    figure="fig09",
    title="Figure 9 — average insertion attempts per Cuckoo geometry",
    metric="average_insertion_attempts",
    unit="attempts",
    series={
        "Shared L2": {
            "4 x 1024 (2x)": 1.05, "3 x 1024 (1.5x)": 1.15,
            "4 x 512 (1x)": 1.45, "3 x 512 (3/4x)": 2.6,
            "4 x 256 (1/2x)": 7.5, "3 x 256 (3/8x)": 16.0,
        },
        "Private L2": {
            "4 x 8192 (2x)": 1.05, "3 x 8192 (1.5x)": 1.2,
            "8 x 2048 (1x)": 1.6, "3 x 4096 (3/4x)": 2.9,
            "8 x 1024 (1/2x)": 8.5, "3 x 2048 (3/8x)": 18.0,
        },
    },
)

#: Figure 10 — average insertion attempts of the chosen designs.
_FIG10_ATTEMPTS = FigureReference(
    figure="fig10",
    title="Figure 10 — average insertion attempts of the chosen designs",
    metric="average_insertion_attempts",
    unit="attempts",
    series={
        "Shared L2": {
            "DB2": 1.25, "Oracle": 1.28, "Qry2": 1.35, "Qry16": 1.38,
            "Qry17": 1.40, "Apache": 1.22, "Zeus": 1.20, "em3d": 1.55,
            "ocean": 1.75,
        },
        "Private L2": {
            "DB2": 1.20, "Oracle": 1.22, "Qry2": 1.32, "Qry16": 1.35,
            "Qry17": 1.38, "Apache": 1.18, "Zeus": 1.16, "em3d": 1.60,
            "ocean": 1.85,
        },
    },
)

#: Figure 12 — forced-invalidation rate per organization (suite means).
#: Sparse 2x worst, Skewed 2x better, Sparse 8x small but non-zero, Cuckoo
#: near-zero despite the smallest capacity.
_FIG12_INVALIDATIONS = FigureReference(
    figure="fig12",
    title="Figure 12 — forced-invalidation rate per organization (suite mean)",
    metric="forced_invalidation_rate",
    unit="fraction of insertions",
    series={
        "Shared L2": {
            "Sparse 2x": 0.080, "Sparse 8x": 0.010,
            "Skewed 2x": 0.035, "Cuckoo": 0.0002,
        },
        "Private L2": {
            "Sparse 2x": 0.095, "Sparse 8x": 0.012,
            "Skewed 2x": 0.040, "Cuckoo": 0.0004,
        },
    },
)

#: Figure 13 — the paper's headline efficiency ratios (Section 5.4).
_FIG13_HEADLINES = FigureReference(
    figure="fig13",
    title="Figure 13 — headline power/area ratios vs. the baselines",
    metric="headline ratios",
    unit="ratio",
    series={
        "Headline": {
            "tagless_energy_ratio_1024": 80.0,
            "sparse_area_ratio_1024": 7.0,
            "duplicate_tag_energy_ratio_16": 16.0,
            "sparse_area_ratio_16": 6.0,
        },
    },
)

#: Registry: experiment name -> digitized reference.
REFERENCES: Dict[str, FigureReference] = {
    reference.figure: reference
    for reference in (
        _FIG08_OCCUPANCY,
        _FIG09_ATTEMPTS,
        _FIG10_ATTEMPTS,
        _FIG12_INVALIDATIONS,
        _FIG13_HEADLINES,
    )
}


def get_reference(figure: str) -> FigureReference:
    """The digitized reference for ``figure``; KeyError names the valid set."""
    try:
        return REFERENCES[figure]
    except KeyError:
        valid = ", ".join(REFERENCES)
        raise KeyError(
            f"no digitized reference for {figure!r}; available: {valid}"
        )
