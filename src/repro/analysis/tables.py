"""Plain-text table rendering.

The paper reports its results as figures; the reproduction prints the same
series as aligned ASCII tables so they can be read in a terminal, diffed
between runs, and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_percentage", "format_ratio"]

#: Cells that stand in for a missing value; they do not stop a column from
#: being treated as numeric, and follow the column's alignment.
PLACEHOLDER_CELLS = frozenset({"", "-", "—", "–", "n/a", "N/A"})


def format_percentage(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string (0.034 -> '3.40%')."""
    return f"{value * 100:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    """Format a ratio with a fixed number of decimals (2.5 -> '2.50x')."""
    return f"{value:.{digits}f}x"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table.

    Cells are converted with ``str``.  Alignment is decided per *column*:
    a column whose data cells are all numeric-looking (placeholders such
    as ``-`` or ``—`` permitted) is right-justified, any other column is
    left-justified — a stray placeholder therefore no longer produces a
    ragged column.  Header cells keep their own per-cell alignment.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    header_row = [str(h) for h in headers]
    num_columns = len(header_row)
    for row in materialized:
        if len(row) != num_columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {num_columns} columns"
            )

    widths = [len(h) for h in header_row]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def looks_numeric(text: str) -> bool:
        stripped = text.rstrip("%x").replace(",", "")
        try:
            float(stripped)
            return True
        except ValueError:
            return False

    def column_numeric(column: int) -> bool:
        has_number = False
        for row in materialized:
            cell = row[column].strip()
            if cell in PLACEHOLDER_CELLS:
                continue
            if not looks_numeric(cell):
                return False
            has_number = True
        return has_number

    numeric_columns = [column_numeric(index) for index in range(num_columns)]

    def format_row(row: Sequence[str], per_cell: bool = False) -> str:
        cells = []
        for index, cell in enumerate(row):
            numeric = looks_numeric(cell) if per_cell else numeric_columns[index]
            if numeric:
                cells.append(cell.rjust(widths[index]))
            else:
                cells.append(cell.ljust(widths[index]))
        return "| " + " | ".join(cells) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(header_row, per_cell=True))
    lines.append(separator)
    for row in materialized:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)
