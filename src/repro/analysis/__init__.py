"""Result aggregation and plain-text reporting helpers.

Experiments produce dictionaries of numbers; this package turns them into
the ASCII tables printed by the examples and benchmark harnesses, and
provides the small statistical helpers (binning, geometric means) the
experiment drivers share.
"""

from repro.analysis.stats import bin_by, geometric_mean, summarize
from repro.analysis.tables import format_percentage, format_ratio, render_table

__all__ = [
    "render_table",
    "format_percentage",
    "format_ratio",
    "geometric_mean",
    "bin_by",
    "summarize",
]
