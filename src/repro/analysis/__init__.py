"""Result aggregation, reporting and comparison.

The reporting subsystem: streaming sweep aggregation
(:mod:`repro.analysis.frame`), ASCII table rendering
(:mod:`repro.analysis.tables`), statistical helpers
(:mod:`repro.analysis.stats`), digitized paper-reference curves with
error metrics (:mod:`repro.analysis.reference`), and sweep/benchmark
comparison with regression gating (:mod:`repro.analysis.report`).
Experiments declare *what* to show; this package owns *how* it is
reduced, rendered, scored against the paper, and diffed between runs.
"""

from repro.analysis.frame import Column, PivotTable, SweepFrame, flatten_record
from repro.analysis.stats import bin_by, geometric_mean, summarize
from repro.analysis.tables import format_percentage, format_ratio, render_table

__all__ = [
    "Column",
    "PivotTable",
    "SweepFrame",
    "flatten_record",
    "render_table",
    "format_percentage",
    "format_ratio",
    "geometric_mean",
    "bin_by",
    "summarize",
]
