"""Rendering and comparison of sweeps, experiment results and benchmarks.

Three jobs, all downstream of :mod:`repro.analysis.frame`:

* **Series extraction** — :func:`experiment_series` turns any experiment
  driver's result object into tidy ``{series: {point: value}}`` data, the
  common currency of CSV/JSON report output and of reference scoring.
* **Reference scoring** — :func:`reference_scores` /
  :func:`reference_summary` compare a result against the digitized paper
  curves (:mod:`repro.analysis.reference`) and render the error metrics.
* **Comparison & regression gating** — :func:`compare_files` diffs two
  result stores or two ``BENCH_*.json`` records metric-by-metric and
  classifies each delta against a direction-aware threshold, producing a
  :class:`CompareReport` the CLI can gate CI on (``--fail-on-regression``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.frame import SweepFrame
from repro.analysis.reference import REFERENCES, ReferenceScore
from repro.analysis.tables import render_table

__all__ = [
    "STORE_METRIC_DIRECTIONS",
    "ComparedMetric",
    "CompareReport",
    "compare_files",
    "experiment_series",
    "reference_scores",
    "reference_summary",
    "series_frame",
]


# -- series extraction -------------------------------------------------------
def _scalability_series(results) -> Dict[str, Dict[str, float]]:
    """Tidy series for the Figure 4 / Figure 13 analytical projections."""
    series: Dict[str, Dict[str, float]] = {}
    for scenario_name, result in results.items():
        for metric in ("energy", "area"):
            label = f"{scenario_name} {metric}"
            series[label] = {
                f"{organization}@{cores}": result.series[organization][cores][metric]
                for organization in result.series
                for cores in result.core_counts
            }
    return series


def experiment_series(name: str, result: object) -> Dict[str, Dict[str, float]]:
    """``{series label: {point label: value}}`` for any experiment result.

    The labels of series that have a digitized paper counterpart match the
    reference curves in :mod:`repro.analysis.reference.curves`, so the
    same extraction feeds CSV/JSON output and reference scoring.
    """
    if name in ("fig04", "fig13"):
        series = _scalability_series(result)
        if name == "fig13":
            from repro.experiments.fig13_power_area import headline_ratios

            series["Headline"] = dict(headline_ratios(result))
        return series
    if name == "fig07":
        series = {}
        for arity, characteristics in result.items():
            series[f"{arity}-ary attempts"] = {
                f"{occupancy:.3f}": attempts
                for occupancy, attempts in zip(
                    characteristics.occupancy_bins,
                    characteristics.average_attempts,
                )
            }
            series[f"{arity}-ary failure"] = {
                f"{occupancy:.3f}": failure
                for occupancy, failure in zip(
                    characteristics.occupancy_bins,
                    characteristics.failure_probability,
                )
            }
        return series
    if name in ("fig08", "fig10"):
        return {
            "Shared L2": dict(result.shared_l2),
            "Private L2": dict(result.private_l2),
        }
    if name == "fig09":
        series = {}
        for config, points in result.configurations().items():
            series[config] = {
                point.label: point.average_insertion_attempts for point in points
            }
            series[f"{config} invalidation rate"] = {
                point.label: point.forced_invalidation_rate for point in points
            }
        return series
    if name == "fig11":
        return {
            label: {str(attempts): fraction for attempts, fraction in distribution.items()}
            for label, distribution in result.distributions.items()
        }
    if name == "fig12":
        series = {}
        for config, rates in result.configurations().items():
            # Suite-mean rate per organization: the digitized Figure 12 shape.
            series[config] = {
                organization: (
                    sum(per_workload.values()) / len(per_workload)
                    if per_workload
                    else 0.0
                )
                for organization, per_workload in rates.items()
            }
            for organization, per_workload in rates.items():
                series[f"{config} / {organization}"] = dict(per_workload)
        return series
    if name == "mix":
        series: Dict[str, Dict[str, float]] = {}
        for scenario, per_config in result.scenarios.items():
            for config, (occupancy, invalidations) in per_config.items():
                series.setdefault(f"{config} occupancy", {})[scenario] = occupancy
                series.setdefault(f"{config} invalidation rate", {})[
                    scenario
                ] = invalidations
        return series
    if name == "ablation-hash":
        return {
            "average insertion attempts": {
                key: point.average_insertion_attempts
                for key, point in result.items()
            },
            "forced invalidation rate": {
                key: point.forced_invalidation_rate
                for key, point in result.items()
            },
        }
    raise KeyError(f"no series extraction for experiment {name!r}")


def series_frame(series: Mapping[str, Mapping[str, float]]) -> SweepFrame:
    """Flatten tidy series into a (series, point, value) frame."""
    return SweepFrame.from_rows(
        {"series": label, "point": point, "value": value}
        for label, points in series.items()
        for point, value in points.items()
    )


# -- reference scoring -------------------------------------------------------
def reference_scores(
    name: str, result: object
) -> Optional[Dict[str, ReferenceScore]]:
    """Error metrics vs. the digitized paper curve (None when undigitized)."""
    reference = REFERENCES.get(name)
    if reference is None:
        return None
    return reference.score(experiment_series(name, result))


def reference_summary(name: str, result: object) -> Optional[str]:
    """ASCII table of the paper-reference error metrics (None if no curve)."""
    scores = reference_scores(name, result)
    if scores is None:
        return None
    reference = REFERENCES[name]
    headers = [
        "Series", "Points", "Geomean rel err", "Max rel dev",
        "Max abs dev", "Rank agreement",
    ]
    rows = [
        [
            label,
            score.points,
            f"{score.geomean_relative_error:.3f}",
            f"{score.max_relative_deviation:.3f}",
            f"{score.max_absolute_deviation:.4g}",
            f"{score.rank_order_agreement:+.2f}",
        ]
        for label, score in scores.items()
    ]
    return render_table(
        headers, rows, title=f"Paper reference: {reference.title}"
    )


# -- comparison and regression gating ----------------------------------------
#: Improvement direction per RunResult metric; "none" metrics are reported
#: but never gate a comparison.
STORE_METRIC_DIRECTIONS: Dict[str, str] = {
    "average_insertion_attempts": "lower",
    "forced_invalidation_rate": "lower",
    "total_messages": "lower",
    "cache_hit_rate": "higher",
    "occupancy_vs_worst_case": "none",
    "average_occupancy": "none",
}


@dataclass(frozen=True)
class ComparedMetric:
    """One (entry, metric) pair compared between baseline and candidate."""

    label: str
    metric: str
    baseline: float
    candidate: float
    direction: str  # "lower" | "higher" | "none"
    threshold: float

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def relative_change(self) -> float:
        if self.baseline:
            return self.delta / abs(self.baseline)
        return 0.0 if not self.delta else math.copysign(math.inf, self.delta)

    @property
    def regression(self) -> bool:
        if self.direction == "lower":
            return self.relative_change > self.threshold
        if self.direction == "higher":
            return self.relative_change < -self.threshold
        return False

    @property
    def improvement(self) -> bool:
        if self.direction == "lower":
            return self.relative_change < -self.threshold
        if self.direction == "higher":
            return self.relative_change > self.threshold
        return False


@dataclass
class CompareReport:
    """Outcome of diffing two sweeps or two benchmark records."""

    kind: str  # "store" | "bench"
    baseline: str
    candidate: str
    threshold: float
    entries: List[ComparedMetric] = field(default_factory=list)
    compared: int = 0
    only_baseline: int = 0
    only_candidate: int = 0

    @property
    def regressions(self) -> List[ComparedMetric]:
        return [entry for entry in self.entries if entry.regression]

    @property
    def improvements(self) -> List[ComparedMetric]:
        return [entry for entry in self.entries if entry.improvement]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        parts = [
            f"{self.compared} {'points' if self.kind == 'store' else 'metrics'} compared",
            f"{len(self.regressions)} regressions",
            f"{len(self.improvements)} improvements",
        ]
        if self.only_baseline:
            parts.append(f"{self.only_baseline} only in baseline")
        if self.only_candidate:
            parts.append(f"{self.only_candidate} only in candidate")
        return ", ".join(parts)

    def render(self, show_all: bool = False) -> str:
        """ASCII comparison: changed entries (or all), then the summary."""
        shown = [
            entry
            for entry in self.entries
            if show_all or entry.regression or entry.improvement
        ]
        headers = ["Entry", "Metric", "Baseline", "Candidate", "Change", "Verdict"]
        rows = []
        for entry in shown:
            relative = entry.relative_change
            change = (
                f"{relative:+.1%}" if math.isfinite(relative) else "new-nonzero"
            )
            verdict = (
                "REGRESSION"
                if entry.regression
                else ("improvement" if entry.improvement else "~")
            )
            rows.append(
                [
                    entry.label,
                    entry.metric,
                    f"{entry.baseline:.6g}",
                    f"{entry.candidate:.6g}",
                    change,
                    verdict,
                ]
            )
        title = (
            f"Comparison ({self.kind}): {self.baseline} -> {self.candidate} "
            f"(threshold {self.threshold:.1%})"
        )
        table = render_table(headers, rows, title=title)
        return f"{table}\n{self.summary()}"

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "baseline": self.baseline,
                "candidate": self.candidate,
                "threshold": self.threshold,
                "summary": self.summary(),
                "ok": self.ok,
                "entries": [
                    {
                        "label": entry.label,
                        "metric": entry.metric,
                        "baseline": entry.baseline,
                        "candidate": entry.candidate,
                        "delta": entry.delta,
                        "relative_change": (
                            entry.relative_change
                            if math.isfinite(entry.relative_change)
                            else None
                        ),
                        "direction": entry.direction,
                        "regression": entry.regression,
                        "improvement": entry.improvement,
                    }
                    for entry in self.entries
                ],
            },
            indent=indent,
        )


def _sealed_store(path: Path) -> bool:
    """True when ``path`` has a segment manifest (WAL may be empty/absent)."""
    # Lazy import: repro.engine.store reaches repro.obs.tracing, which pulls
    # repro.analysis back in at import time.
    from repro.engine.segment import MANIFEST_NAME
    from repro.engine.store import segments_dir

    return (segments_dir(path) / MANIFEST_NAME).is_file()


def _detect_kind(path: Path) -> str:
    """"store" for JSONL result stores, "bench" for BENCH_*.json records.

    A store is any file with a ``{"key": ..., "result": ...}`` record in
    its first lines — torn or corrupt leading lines are skipped, matching
    the tolerance of :class:`~repro.engine.store.ResultStore` loads.
    A path whose sibling ``<name>.segments/`` directory holds a manifest is
    also a store, even when its WAL is empty or absent (sealed/compacted
    stores keep most records in binary segments).  Anything else that
    parses as one JSON document is a benchmark record.
    """
    if _sealed_store(path):
        return "store"
    probed = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            probed += 1
            if probed > 50:
                break
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn store line, or one line of a pretty JSON doc
            if isinstance(record, dict) and "key" in record and "result" in record:
                return "store"
    if probed == 0:
        return "store"  # empty file: treat as an empty store
    try:
        with path.open("r", encoding="utf-8") as handle:
            json.load(handle)
        return "bench"
    except json.JSONDecodeError:
        return "store"  # line-corrupt JSONL: the tolerant store reader applies


def _store_entries(path: Path) -> Dict[str, Tuple[str, Dict[str, float]]]:
    """``{spec key: (label, {metric: value})}`` streamed from a store file."""
    from repro.engine.results import RunResult
    from repro.engine.store import iter_store_records

    entries: Dict[str, Tuple[str, Dict[str, float]]] = {}
    for key, payload in iter_store_records(path):
        try:
            result = RunResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            continue
        metrics = {
            name: float(getattr(result, name)) for name in STORE_METRIC_DIRECTIONS
        }
        entries[key] = (f"{result.spec.label()} [{key[:8]}]", metrics)
    return entries


def _bench_leaves(data: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a benchmark record, keyed by dotted path."""
    leaves: Dict[str, float] = {}
    if isinstance(data, Mapping):
        for name, value in data.items():
            path = f"{prefix}.{name}" if prefix else str(name)
            leaves.update(_bench_leaves(value, path))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        leaves[prefix] = float(data)
    return leaves


def _bench_direction(path: str) -> str:
    lowered = path.lower()
    # "overhead" wins over the generic "ratio" rule: an overhead_ratio is
    # a cost (lower is better), not a speedup-style ratio.
    if "overhead" in lowered:
        return "lower"
    # Rates must win over the "seconds" rule: "records_per_second" contains
    # "seconds" but more of it is better.
    if "per_second" in lowered or "throughput" in lowered:
        return "higher"
    if "speedup" in lowered or "ratio" in lowered:
        return "higher"
    if "seconds" in lowered or "bytes" in lowered:
        return "lower"
    return "none"


def compare_files(
    baseline: Union[str, Path],
    candidate: Union[str, Path],
    threshold: float = 0.05,
    metrics: Optional[Sequence[str]] = None,
) -> CompareReport:
    """Diff two result stores or two benchmark records.

    Both files must be the same kind (detected from content: JSONL records
    with ``key``/``result`` fields are stores, a single JSON object is a
    ``BENCH_*.json`` record).  Store comparisons pair points by spec
    content hash and compare the metrics in
    :data:`STORE_METRIC_DIRECTIONS` (or the ``metrics`` subset); benchmark
    comparisons pair numeric leaves by dotted path, inferring direction
    from the name (``*seconds``/``*bytes`` lower-better,
    ``*speedup``/``*ratio`` higher-better).  ``threshold`` is the relative
    change beyond which a direction-aware delta counts as a regression or
    improvement; a zero baseline going non-zero in the regressing
    direction always counts.
    """
    baseline_path, candidate_path = Path(baseline), Path(candidate)
    for path in (baseline_path, candidate_path):
        if not path.exists() and not _sealed_store(path):
            raise FileNotFoundError(f"no such file: {path}")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    kinds = (_detect_kind(baseline_path), _detect_kind(candidate_path))
    if kinds[0] != kinds[1]:
        raise ValueError(
            f"cannot compare a {kinds[0]} file against a {kinds[1]} file "
            f"({baseline_path} vs {candidate_path})"
        )
    report = CompareReport(
        kind=kinds[0],
        baseline=str(baseline_path),
        candidate=str(candidate_path),
        threshold=threshold,
    )
    if report.kind == "store":
        _compare_stores(report, baseline_path, candidate_path, metrics)
    else:
        _compare_bench(report, baseline_path, candidate_path, metrics)
    return report


def _compare_stores(
    report: CompareReport,
    baseline_path: Path,
    candidate_path: Path,
    metrics: Optional[Sequence[str]],
) -> None:
    selected = list(metrics) if metrics else list(STORE_METRIC_DIRECTIONS)
    unknown = [metric for metric in selected if metric not in STORE_METRIC_DIRECTIONS]
    if unknown:
        # A typo here must not gate vacuously: an unknown metric would
        # simply compare nothing and report success.
        raise ValueError(
            f"unknown store metric(s): {', '.join(unknown)} "
            f"(expected: {', '.join(STORE_METRIC_DIRECTIONS)})"
        )
    baseline_entries = _store_entries(baseline_path)
    candidate_entries = _store_entries(candidate_path)
    report.only_baseline = len(set(baseline_entries) - set(candidate_entries))
    report.only_candidate = len(set(candidate_entries) - set(baseline_entries))
    for key, (label, baseline_metrics) in baseline_entries.items():
        if key not in candidate_entries:
            continue
        _label, candidate_metrics = candidate_entries[key]
        report.compared += 1
        for metric in selected:
            if metric not in baseline_metrics or metric not in candidate_metrics:
                continue
            report.entries.append(
                ComparedMetric(
                    label=label,
                    metric=metric,
                    baseline=baseline_metrics[metric],
                    candidate=candidate_metrics[metric],
                    direction=STORE_METRIC_DIRECTIONS.get(metric, "none"),
                    threshold=report.threshold,
                )
            )


def _compare_bench(
    report: CompareReport,
    baseline_path: Path,
    candidate_path: Path,
    metrics: Optional[Sequence[str]],
) -> None:
    with baseline_path.open("r", encoding="utf-8") as handle:
        baseline_leaves = _bench_leaves(json.load(handle))
    with candidate_path.open("r", encoding="utf-8") as handle:
        candidate_leaves = _bench_leaves(json.load(handle))
    if metrics:
        unfiltered = bool(baseline_leaves or candidate_leaves)
        baseline_leaves = {
            path: value
            for path, value in baseline_leaves.items()
            if any(wanted in path for wanted in metrics)
        }
        candidate_leaves = {
            path: value
            for path, value in candidate_leaves.items()
            if any(wanted in path for wanted in metrics)
        }
        if unfiltered and not baseline_leaves and not candidate_leaves:
            # Nothing matched: gating would pass vacuously on a typo.
            raise ValueError(
                f"no benchmark metrics match {', '.join(metrics)!s} "
                f"in {baseline_path} or {candidate_path}"
            )
    report.only_baseline = len(set(baseline_leaves) - set(candidate_leaves))
    report.only_candidate = len(set(candidate_leaves) - set(baseline_leaves))
    for path, baseline_value in baseline_leaves.items():
        if path not in candidate_leaves:
            continue
        report.compared += 1
        report.entries.append(
            ComparedMetric(
                label=path,
                metric=path.rsplit(".", 1)[-1],
                baseline=baseline_value,
                candidate=candidate_leaves[path],
                direction=_bench_direction(path),
                threshold=report.threshold,
            )
        )
