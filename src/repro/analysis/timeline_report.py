"""Aggregation and rendering of stored counter timelines.

One stored :class:`~repro.obs.timeline.Timeline` renders itself
(:meth:`~repro.obs.timeline.Timeline.render`); this module handles the
*many-timeline* case ``repro-run report --timeline`` hits — every point of
an experiment carries its own timeline, usually with different sample
counts (workloads warm up at different speeds), so the timelines are first
**downsampled onto a common normalized-time axis** (``buckets`` evenly
split progress buckets) and then reduced per (channel, bucket) through a
:class:`~repro.analysis.frame.SweepFrame` into a mean/p95 envelope: the
mean is the typical trajectory, the p95 the excursion boundary across the
sweep's points.

Channels aggregate over their :meth:`~repro.obs.timeline.Timeline.
display_series` shape — cumulative counters as per-interval rates, vector
channels collapsed — so the envelope of a channel answers the same
question as its single-timeline sparkline.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.frame import SweepFrame
from repro.obs.timeline import (
    CHANNEL_NAMES,
    Timeline,
    sparkline,
    unknown_channels_message,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "aggregate_timelines",
    "render_timelines",
    "timelines_to_csv",
    "timelines_to_json",
]

#: Normalized-time buckets the envelope aggregation downsamples onto.
DEFAULT_BUCKETS = 32

#: A labelled stored timeline: (point label, timeline).
LabeledTimeline = Tuple[str, Timeline]


def _resolve_channels(
    timelines: Sequence[LabeledTimeline], channels: Optional[Sequence[str]]
) -> List[str]:
    """Channels to report, validated; declaration order when defaulted."""
    if channels is not None:
        message = unknown_channels_message(channels)
        if message is not None:
            raise ValueError(message)
        return list(channels)
    active: List[str] = []
    for name in CHANNEL_NAMES:
        if any(name in timeline.channel_names() for _label, timeline in timelines):
            active.append(name)
    return active


def _bucket_records(
    timelines: Sequence[LabeledTimeline],
    channels: Sequence[str],
    buckets: int,
) -> Iterator[Dict[str, object]]:
    """Flat (channel, bucket, value) records feeding the SweepFrame.

    Each timeline's samples map onto ``buckets`` by *normalized* position
    (sample i of n lands in bucket ``i * buckets // n``), so timelines
    with different sample counts contribute to the same progress axis.
    """
    for _label, timeline in timelines:
        for name in channels:
            if name not in timeline.channel_names():
                continue
            series = timeline.display_series(name)
            n = series.size
            if n == 0:
                continue
            positions = (np.arange(n) * buckets) // n
            for bucket, value in zip(positions.tolist(), series.tolist()):
                yield {"channel": name, "bucket": bucket, "value": value}


def aggregate_timelines(
    timelines: Sequence[LabeledTimeline],
    channels: Optional[Sequence[str]] = None,
    buckets: int = DEFAULT_BUCKETS,
) -> SweepFrame:
    """Mean/p95 envelope of many timelines on a normalized-time axis.

    Returns a :class:`SweepFrame` grouped by ``(channel, bucket)`` with
    ``mean``, ``p95`` and ``n`` (contributing samples) columns, rows in
    channel-declaration then bucket order.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    names = _resolve_channels(timelines, channels)
    frame = SweepFrame.aggregate(
        _bucket_records(timelines, names, buckets),
        group_by=("channel", "bucket"),
        metrics={
            "mean": ("value", "mean"),
            "p95": ("value", "p95"),
            "n": ("value", "count"),
        },
    )
    # _bucket_records iterates per timeline; re-sort to the canonical
    # (channel declaration, bucket) order so output is stable regardless
    # of which point happened to sample a bucket first.
    order = {name: index for index, name in enumerate(names)}
    rows = sorted(frame.rows(), key=lambda row: (order[row["channel"]], row["bucket"]))
    return SweepFrame(rows, group_by=("channel", "bucket"))


def _envelope_rows(
    frame: SweepFrame, width: int
) -> List[Tuple[str, str, str, str, str, str]]:
    by_channel: Dict[str, List[Dict[str, object]]] = {}
    for row in frame:
        by_channel.setdefault(str(row["channel"]), []).append(row)
    rendered = []
    for name, rows in by_channel.items():
        means = [float(row["mean"]) for row in rows]
        p95s = [float(row["p95"]) for row in rows]
        rendered.append(
            (
                name,
                str(len(rows)),
                f"{min(means):.4g}",
                f"{max(p95s):.4g}",
                sparkline(means, width=width),
                sparkline(p95s, width=width),
            )
        )
    return rendered


def render_timelines(
    timelines: Sequence[LabeledTimeline],
    channels: Optional[Sequence[str]] = None,
    buckets: int = DEFAULT_BUCKETS,
    width: int = 48,
    title: str = "",
) -> str:
    """ASCII report over stored timelines.

    A single timeline renders directly (true sample axis, full channel
    table); several render as the mean/p95 envelope over normalized time,
    preceded by the contributing point labels.
    """
    if not timelines:
        return "no stored timelines"
    if len(timelines) == 1:
        label, timeline = timelines[0]
        names = _resolve_channels(timelines, channels)
        header = title or f"Timeline: {label}"
        return f"{header}\n{timeline.render(names, width=width)}"
    frame = aggregate_timelines(timelines, channels=channels, buckets=buckets)
    lines = [title or f"Timeline envelope over {len(timelines)} points"]
    lines.extend(f"  - {label}" for label, _timeline in timelines)
    rows = _envelope_rows(frame, width)
    headers = ("channel", "buckets", "min(mean)", "max(p95)", "mean", "p95")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(4)
    ]
    lines.append(
        "  ".join(headers[i].ljust(widths[i]) for i in range(4))
        + "  " + headers[4].ljust(width) + "  " + headers[5]
    )
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(4))
            + "  " + row[4].ljust(width) + "  " + row[5]
        )
    return "\n".join(lines)


def timelines_to_json(
    timelines: Sequence[LabeledTimeline],
    channels: Optional[Sequence[str]] = None,
    buckets: int = DEFAULT_BUCKETS,
    indent: Optional[int] = 2,
) -> str:
    """JSON report: every point's full timeline plus the envelope.

    Channel value lists come from :meth:`Timeline.to_json_dict`, so the
    schema of each point matches the golden-pinned single-timeline form.
    """
    names = _resolve_channels(timelines, channels)
    points = []
    for label, timeline in timelines:
        payload = timeline.to_json_dict()
        payload["channels"] = {
            name: data
            for name, data in payload["channels"].items()
            if name in names
        }
        points.append({"label": label, **payload})
    document: Dict[str, object] = {"points": points}
    if len(timelines) > 1:
        envelope = aggregate_timelines(timelines, channels=names, buckets=buckets)
        document["envelope"] = {
            "buckets": buckets,
            "rows": envelope.rows(),
        }
    return json.dumps(document, indent=indent)


def timelines_to_csv(
    timelines: Sequence[LabeledTimeline],
    channels: Optional[Sequence[str]] = None,
) -> str:
    """Tidy CSV over stored timelines: the single-timeline layout
    (``channel,lane,sample,accesses,value``) with a leading ``point``
    label column."""
    names = _resolve_channels(timelines, channels)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["point", "channel", "lane", "sample", "accesses", "value"])
    for label, timeline in timelines:
        for name in names:
            if name not in timeline.channel_names():
                continue
            cadence = timeline.channel_cadence(name)
            values = timeline.channel(name)
            if values.ndim == 1:
                values = values.reshape(-1, 1)
            for index, row in enumerate(values.tolist()):
                accesses = "" if cadence is None else str((index + 1) * cadence)
                for lane, value in enumerate(row):
                    writer.writerow([label, name, lane, index, accesses, repr(value)])
    return buffer.getvalue()
