"""Streaming aggregation of sweep results.

The reporting subsystem's core abstraction: a :class:`SweepFrame` is built
by *streaming* result records — :class:`~repro.engine.results.RunResult`
objects, store payload dicts, or plain mappings — through group-by
accumulators, so arbitrarily large sweeps (a whole
:class:`~repro.engine.store.ResultStore`, a JSONL stream) are reduced
without ever materializing the record list.  What survives is one small
row per group, which the frame can pivot into two-dimensional tables,
render as ASCII, or serialize as CSV/JSON.

Reductions accumulate incrementally in record order, with arithmetic
identical to the naive ``sum(xs) / len(xs)`` /
:func:`repro.analysis.stats.geometric_mean` loops the experiment drivers
used before this module existed — the golden-pinned experiment tables
depend on that equivalence.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.tables import render_table

__all__ = [
    "REDUCTIONS",
    "Column",
    "PivotTable",
    "SweepFrame",
    "flatten_record",
]

#: Epsilon used by the streaming geometric mean; identical to the clamp in
#: :func:`repro.analysis.stats.geometric_mean`.
_GEOMEAN_EPSILON = 1e-12


# -- streaming reductions ----------------------------------------------------
class _Mean:
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    def value(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Geomean:
    __slots__ = ("log_sum", "count")

    def __init__(self) -> None:
        self.log_sum = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("geometric mean requires non-negative values")
        self.log_sum += math.log(max(value, _GEOMEAN_EPSILON))
        self.count += 1

    def value(self) -> float:
        return math.exp(self.log_sum / self.count) if self.count else 0.0


class _Min:
    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current: Optional[float] = None

    def add(self, value: float) -> None:
        if self.current is None or value < self.current:
            self.current = value

    def value(self) -> float:
        return self.current if self.current is not None else 0.0


class _Max:
    __slots__ = ("current",)

    def __init__(self) -> None:
        self.current: Optional[float] = None

    def add(self, value: float) -> None:
        if self.current is None or value > self.current:
            self.current = value

    def value(self) -> float:
        return self.current if self.current is not None else 0.0


class _Sum:
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def add(self, value: float) -> None:
        self.total += value

    def value(self) -> float:
        return self.total


class _Quantile:
    """Exact quantile accumulator (retains the group's values).

    Unlike the O(1)-state reductions above this one holds every added
    value, so its memory is proportional to the group size — fine for the
    envelope aggregation of downsampled timelines it exists for (hundreds
    of values per bucket), not for unbounded streams.  Interpolation is
    linear between closest ranks, matching ``numpy.quantile``'s default.
    """

    __slots__ = ("values", "q")

    def __init__(self, q: float) -> None:
        self.values: List[float] = []
        self.q = q

    def add(self, value: float) -> None:
        self.values.append(value)

    def value(self) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        position = self.q * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def _p50() -> _Quantile:
    return _Quantile(0.50)


def _p95() -> _Quantile:
    return _Quantile(0.95)


class _Count:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: object) -> None:
        self.count += 1

    def value(self) -> int:
        return self.count


class _First:
    __slots__ = ("seen", "first")

    def __init__(self) -> None:
        self.seen = False
        self.first: object = None

    def add(self, value: object) -> None:
        if not self.seen:
            self.seen = True
            self.first = value

    def value(self) -> object:
        return self.first


class _Last:
    __slots__ = ("last",)

    def __init__(self) -> None:
        self.last: object = None

    def add(self, value: object) -> None:
        self.last = value

    def value(self) -> object:
        return self.last


#: Reduction name -> accumulator factory.
REDUCTIONS: Dict[str, Callable[[], object]] = {
    "mean": _Mean,
    "geomean": _Geomean,
    "min": _Min,
    "max": _Max,
    "sum": _Sum,
    "count": _Count,
    "first": _First,
    "last": _Last,
    "p50": _p50,
    "p95": _p95,
}


#: RunResult metric fields exposed by :func:`flatten_record`, in the order
#: flat reports print them.
METRIC_FIELDS: Tuple[str, ...] = (
    "accesses",
    "cache_hit_rate",
    "average_occupancy",
    "occupancy_vs_worst_case",
    "average_insertion_attempts",
    "forced_invalidation_rate",
    "insertions",
    "insertion_attempts",
    "forced_invalidations",
    "tracked_frames_total",
    "directory_capacity_total",
    "total_messages",
)


def flatten_record(record: object) -> Dict[str, object]:
    """Flatten one result record into a single-level field dict.

    Accepts a :class:`~repro.engine.results.RunResult` (or anything with a
    ``to_dict``), a store payload dict with a nested ``"spec"``, or an
    already-flat mapping.  Spec fields and metric fields land in one
    namespace — ``workload``, ``organization``, ``ways``, … alongside
    ``average_insertion_attempts`` & co.  The attempt histogram and
    ``elapsed_seconds`` are dropped: they are not aggregatable columns.
    """
    if hasattr(record, "to_dict"):
        record = record.to_dict()
    if not isinstance(record, Mapping):
        raise TypeError(
            f"cannot flatten a {type(record).__name__} into a sweep record"
        )
    flat: Dict[str, object] = {}
    spec = record.get("spec")
    if isinstance(spec, Mapping):
        flat.update(spec)
    for name, value in record.items():
        if name in ("spec", "attempt_histogram", "elapsed_seconds"):
            continue
        flat[name] = value
    return flat


def _native(value: object) -> object:
    """A numpy scalar as its plain Python equivalent (pass-through otherwise)."""
    return value.item() if isinstance(value, np.generic) else value


def _decode_cell(field: str, value: object) -> object:
    """One columnar group-key cell as the value the streaming path yields.

    The codec stores optional spec fields with sentinel encodings
    (``-1``/empty string for ``None``); group keys must come back as the
    original ``None`` so frames from both aggregation paths are
    interchangeable.
    """
    # Imported lazily: the analysis package loads before the engine
    # (obs.tracing renders through analysis.tables), so a module-level
    # import here would be circular.
    from repro.engine.results import (
        NONE_INT_SENTINEL,
        OPTIONAL_INT_COLUMNS,
        OPTIONAL_STR_COLUMNS,
    )

    value = _native(value)
    if field in OPTIONAL_INT_COLUMNS and value == NONE_INT_SENTINEL:
        return None
    if field in OPTIONAL_STR_COLUMNS and value == "":
        return None
    return value


class Column:
    """One rendered column: header text, source field, cell formatter."""

    __slots__ = ("header", "field", "format")

    def __init__(
        self,
        header: str,
        field: Optional[str] = None,
        format: Callable[[object], str] = str,
    ) -> None:
        self.header = header
        self.field = field if field is not None else header
        self.format = format


class PivotTable:
    """A pivoted (index × column) grid of formatted cells."""

    def __init__(self, index_label: str, columns: List[str], rows: List[List[str]]):
        self.index_label = index_label
        self.columns = columns
        self.rows = rows

    @property
    def headers(self) -> List[str]:
        return [self.index_label] + self.columns

    def render(self, title: str = "") -> str:
        return render_table(self.headers, self.rows, title=title)


MetricSpec = Union[str, Tuple[str, str]]


class SweepFrame:
    """Grouped, reduced view of a stream of sweep records.

    Build with :meth:`aggregate` (streaming group-by/reduce) or
    :meth:`from_records` (one row per record, selected fields only); both
    consume their input lazily.  The frame itself is small — one dict per
    group — and knows how to pivot, render and serialize itself.
    """

    def __init__(self, rows: List[Dict[str, object]], group_by: Tuple[str, ...] = ()):
        self._rows = rows
        self.group_by = group_by

    # -- construction --------------------------------------------------------
    @classmethod
    def aggregate(
        cls,
        records: Iterable[object],
        group_by: Sequence[str],
        metrics: Mapping[str, MetricSpec],
        where: Optional[Callable[[Mapping[str, object]], bool]] = None,
    ) -> "SweepFrame":
        """Stream ``records`` through per-group reduction accumulators.

        ``group_by`` names the fields forming the group key (output row
        order is first-seen group order, so a deterministic record stream
        yields a deterministic frame).  ``metrics`` maps each output
        column to ``(source_field, reduction)`` — or just a reduction
        name, in which case the column name is also the source field.
        ``where`` filters flattened records before they reach any
        accumulator.
        """
        group_by = tuple(group_by)
        parsed: Dict[str, Tuple[str, str]] = {}
        for name, spec in metrics.items():
            if isinstance(spec, str):
                source, reduction = name, spec
            else:
                source, reduction = spec
            if reduction not in REDUCTIONS:
                raise ValueError(
                    f"unknown reduction {reduction!r} "
                    f"(expected one of: {', '.join(REDUCTIONS)})"
                )
            parsed[name] = (source, reduction)

        groups: Dict[Tuple[object, ...], Dict[str, object]] = {}
        order: List[Tuple[object, ...]] = []
        for record in records:
            flat = flatten_record(record)
            if where is not None and not where(flat):
                continue
            key = tuple(flat.get(field) for field in group_by)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = {
                    name: REDUCTIONS[reduction]()
                    for name, (_source, reduction) in parsed.items()
                }
                groups[key] = accumulators
                order.append(key)
            for name, (source, _reduction) in parsed.items():
                if source in flat:
                    accumulators[name].add(flat[source])

        rows: List[Dict[str, object]] = []
        for key in order:
            row: Dict[str, object] = dict(zip(group_by, key))
            for name, accumulator in groups[key].items():
                row[name] = accumulator.value()
            rows.append(row)
        return cls(rows, group_by=group_by)

    @classmethod
    def aggregate_columns(
        cls,
        store_path: Union[str, "object"],
        group_by: Sequence[str],
        metrics: Mapping[str, MetricSpec],
        where: Optional[Callable[[Mapping[str, object]], bool]] = None,
    ) -> "SweepFrame":
        """:meth:`aggregate` over a result store, vectorized over columns.

        Instead of decoding every record into a dict and streaming it
        through Python accumulators, this reads the store's columnar
        segments (:func:`repro.engine.store.load_store_columns`) and
        reduces whole numpy arrays per group — the cold-scan fast path for
        large stores.  Group order, group-key values and reduction
        semantics match :meth:`aggregate` over
        :func:`~repro.engine.store.iter_store_records`; anything the
        columnar path cannot express (a ``where`` callable, fields outside
        the fixed schema, extras-resident records) silently falls back to
        the streaming implementation.
        """
        from repro.engine.store import iter_store_records, load_store_columns

        group_by = tuple(group_by)
        parsed: Dict[str, Tuple[str, str]] = {}
        for name, spec in metrics.items():
            if isinstance(spec, str):
                source, reduction = name, spec
            else:
                source, reduction = spec
            if reduction not in REDUCTIONS:
                raise ValueError(
                    f"unknown reduction {reduction!r} "
                    f"(expected one of: {', '.join(REDUCTIONS)})"
                )
            parsed[name] = (source, reduction)

        def fallback() -> "SweepFrame":
            return cls.aggregate(
                (payload for _key, payload in iter_store_records(store_path)),
                group_by=group_by,
                metrics=metrics,
                where=where,
            )

        # flatten_record never exposes these, so neither may the fast path.
        unflattened = {"spec", "attempt_histogram", "elapsed_seconds"}
        needed = tuple(
            dict.fromkeys(
                list(group_by) + [source for source, _r in parsed.values()]
            )
        )
        if (
            where is not None
            or not needed
            or any(field in unflattened for field in needed)
        ):
            return fallback()
        columns = load_store_columns(store_path, needed)
        if columns is None:
            return fallback()

        total = len(columns[needed[0]]) if needed else 0
        if total == 0:
            return cls([], group_by=group_by)

        # Factorize the group key: combine per-field codes, then order
        # groups by first appearance to match the streaming frame.
        if group_by:
            combined = np.zeros(total, dtype=np.int64)
            for field in group_by:
                _values, codes = np.unique(columns[field], return_inverse=True)
                combined = combined * (int(codes.max()) + 1) + codes
            _ids, inverse = np.unique(combined, return_inverse=True)
            n_groups = len(_ids)
        else:
            inverse = np.zeros(total, dtype=np.int64)
            n_groups = 1
        first_pos = np.full(n_groups, total, dtype=np.int64)
        np.minimum.at(first_pos, inverse, np.arange(total, dtype=np.int64))
        group_order = np.argsort(first_pos, kind="stable")
        rank = np.empty(n_groups, dtype=np.int64)
        rank[group_order] = np.arange(n_groups, dtype=np.int64)

        counts = np.bincount(inverse, minlength=n_groups)
        reduced: Dict[str, np.ndarray] = {}
        for name, (source, reduction) in parsed.items():
            values = columns[source]
            if reduction == "count":
                reduced[name] = counts.astype(np.int64)
                continue
            numeric = values.astype(np.float64)
            if reduction == "mean":
                sums = np.bincount(inverse, weights=numeric, minlength=n_groups)
                reduced[name] = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            elif reduction == "sum":
                reduced[name] = np.bincount(
                    inverse, weights=numeric, minlength=n_groups
                )
            elif reduction == "geomean":
                if (numeric < 0).any():
                    raise ValueError(
                        "geometric mean requires non-negative values"
                    )
                logs = np.log(np.maximum(numeric, _GEOMEAN_EPSILON))
                sums = np.bincount(inverse, weights=logs, minlength=n_groups)
                reduced[name] = np.exp(sums / np.maximum(counts, 1))
            elif reduction == "min":
                out = np.full(n_groups, np.inf)
                np.minimum.at(out, inverse, numeric)
                reduced[name] = out
            elif reduction == "max":
                out = np.full(n_groups, -np.inf)
                np.maximum.at(out, inverse, numeric)
                reduced[name] = out
            elif reduction in ("first", "last"):
                position = np.full(
                    n_groups, total if reduction == "first" else -1, dtype=np.int64
                )
                if reduction == "first":
                    np.minimum.at(
                        position, inverse, np.arange(total, dtype=np.int64)
                    )
                else:
                    np.maximum.at(
                        position, inverse, np.arange(total, dtype=np.int64)
                    )
                reduced[name] = values[position]
            else:  # p50 / p95 — exact quantiles need the group's values
                q = 0.50 if reduction == "p50" else 0.95
                out = np.zeros(n_groups, dtype=np.float64)
                for group in range(n_groups):
                    members = numeric[inverse == group]
                    if len(members):
                        out[group] = np.quantile(members, q)
                reduced[name] = out

        rows: List[Dict[str, object]] = []
        for group in group_order:
            anchor = int(first_pos[group])
            row: Dict[str, object] = {
                field: _decode_cell(field, columns[field][anchor])
                for field in group_by
            }
            for name in parsed:
                row[name] = _native(reduced[name][group])
            rows.append(row)
        return cls(rows, group_by=group_by)

    @classmethod
    def from_records(
        cls,
        records: Iterable[object],
        fields: Optional[Sequence[str]] = None,
        where: Optional[Callable[[Mapping[str, object]], bool]] = None,
    ) -> "SweepFrame":
        """One row per record, restricted to ``fields`` (all fields if None).

        Streaming in the sense that only the selected fields of each
        record are retained — the frame *is* the report, so its size is
        the size of the output, not of the raw records.
        """
        rows: List[Dict[str, object]] = []
        for record in records:
            flat = flatten_record(record)
            if where is not None and not where(flat):
                continue
            if fields is None:
                rows.append(flat)
            else:
                rows.append({field: flat.get(field) for field in fields})
        return cls(rows)

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, object]]) -> "SweepFrame":
        """Wrap pre-shaped rows (experiment result objects already reduced)."""
        return cls([dict(row) for row in rows])

    # -- access --------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        return [dict(row) for row in self._rows]

    def column(self, field: str) -> List[object]:
        return [row.get(field) for row in self._rows]

    def fields(self) -> List[str]:
        seen: Dict[str, None] = {}
        for row in self._rows:
            for field in row:
                seen.setdefault(field, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    # -- shaping -------------------------------------------------------------
    def pivot(
        self,
        index: str,
        columns: str,
        value: str,
        index_label: Optional[str] = None,
        index_order: Optional[Sequence[object]] = None,
        column_order: Optional[Sequence[object]] = None,
        default: Optional[object] = None,
        fmt: Callable[[object], str] = str,
        missing: str = "-",
    ) -> PivotTable:
        """Pivot the frame into an (``index`` × ``columns``) grid.

        Cell values come from ``value``; absent combinations fall back to
        ``default`` (then formatted) or, when ``default`` is None, to the
        literal ``missing`` placeholder.  Row/column order is first-seen
        order unless pinned explicitly.
        """
        cells: Dict[Tuple[object, object], object] = {}
        index_seen: List[object] = []
        column_seen: List[object] = []
        for row in self._rows:
            row_key = row.get(index)
            column_key = row.get(columns)
            if row_key not in index_seen:
                index_seen.append(row_key)
            if column_key not in column_seen:
                column_seen.append(column_key)
            cells[(row_key, column_key)] = row.get(value)

        index_values = list(index_order) if index_order is not None else index_seen
        column_values = (
            list(column_order) if column_order is not None else column_seen
        )

        rendered: List[List[str]] = []
        for row_key in index_values:
            line: List[str] = [str(row_key)]
            for column_key in column_values:
                if (row_key, column_key) in cells:
                    line.append(fmt(cells[(row_key, column_key)]))
                elif default is not None:
                    line.append(fmt(default))
                else:
                    line.append(missing)
            rendered.append(line)
        return PivotTable(
            index_label=index_label if index_label is not None else index,
            columns=[str(column) for column in column_values],
            rows=rendered,
        )

    # -- output --------------------------------------------------------------
    def render(
        self,
        columns: Optional[Sequence[Column]] = None,
        title: str = "",
    ) -> str:
        """Render the frame as an aligned ASCII table."""
        if columns is None:
            columns = [Column(field) for field in self.fields()]
        headers = [column.header for column in columns]
        rows = [
            [column.format(row.get(column.field)) for column in columns]
            for row in self._rows
        ]
        return render_table(headers, rows, title=title)

    def to_csv(self, fields: Optional[Sequence[str]] = None) -> str:
        """Serialize as CSV (header row + one line per frame row)."""
        fields = list(fields) if fields is not None else self.fields()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(fields)
        for row in self._rows:
            writer.writerow([row.get(field, "") for field in fields])
        return buffer.getvalue()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize as JSON: ``{"group_by": [...], "rows": [...]}``."""
        return json.dumps(
            {"group_by": list(self.group_by), "rows": self._rows},
            indent=indent,
            sort_keys=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepFrame({len(self._rows)} rows, group_by={self.group_by!r})"
