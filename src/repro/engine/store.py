"""Content-addressed on-disk result store, backed by a columnar engine.

The public surface is unchanged from the original JSONL store — results
are keyed by the :meth:`RunSpec.key` content hash, ``get``/``put`` count
hits and misses, counter timelines live in ``.npz`` sidecars — but the
internals are now a small LSM-style storage engine:

* **WAL.** ``put`` appends one JSON line to the store path (the write-ahead
  log), exactly the old format plus a ``ts`` commit timestamp used for
  cross-writer last-wins ordering.  Appends are flushed immediately (a
  concurrent reader sees them) but fsynced in *groups* — the first write,
  then every :data:`DEFAULT_FSYNC_BATCH` records or
  :data:`DEFAULT_FSYNC_INTERVAL` seconds, whichever comes first — instead
  of once per record.  :meth:`ResultStore.flush` forces the sync point.
* **Segments.** Once the WAL holds :data:`DEFAULT_SEAL_THRESHOLD` records
  it is *sealed*: the records are packed through the columnar codec
  (:func:`repro.engine.results.encode_record_batch`) into immutable
  ``.npy`` segment files under ``<store>.segments/``, committed into
  ``MANIFEST.json``, and the WAL is truncated.  Each segment carries a
  small persisted key index, so a fresh open reads the manifest and the
  per-segment indexes — O(index), never the record payloads.
* **Multi-writer.** A store opened with a ``writer`` name appends to its
  own ``wal-<writer>.jsonl`` inside the segment directory and seals its
  own segments; the manifest merge runs under an ``flock`` so concurrent
  writers never lose each other's segments.  A fresh open discovers every
  writer's WAL by glob and resolves duplicate keys by commit timestamp.
* **Compaction.** :meth:`ResultStore.compact` folds last-wins duplicates.
  A store that never sealed compacts exactly as before (rewrite the JSONL
  in place, crash-safe via temp file + ``os.replace``); a sealed store
  folds every live record into one fresh segment and drops the dead ones.

Stores written by the previous JSONL-only engine load unchanged: their
lines simply have no ``ts`` and are ordered by position, and they never
had segments to begin with.  ``export_jsonl``/``import_jsonl`` (surfaced
as ``repro-run cache export``/``import``) translate any store back to
plain last-wins JSONL and validate records on the way in.

Counter timelines (:mod:`repro.obs.timeline`) are columnar numpy data, so
they never ride in the record payloads: a result carrying one also writes
a compact quantized ``.npz`` sidecar under ``<store>.timelines/<key>.npz``.
The spec key excludes ``timeline_interval``, so the record is shared
between timeline and non-timeline requests; :meth:`ResultStore.get`
reports a *miss* when the spec asks for a timeline the sidecar cannot
serve (absent, or sampled at a different cadence), which makes the runner
re-simulate exactly that point with collection enabled.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.engine.results import RunResult, decode_record_row, encode_record_batch
from repro.engine.segment import (
    MANIFEST_NAME,
    LoadedSegment,
    Manifest,
    SegmentMeta,
    load_manifest,
    merge_manifest,
    read_segment,
    read_segment_index,
    segment_file_names,
    write_segment,
)
from repro.engine.spec import RunSpec
from repro.obs.logging import get_logger
from repro.obs.metrics import counter as _obs_counter
from repro.obs.timeline import Timeline, load_timeline, save_timeline
from repro.obs.tracing import TRACER as _TRACER

try:  # pragma: no cover - posix-only locking, exercised on linux CI
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None

__all__ = [
    "CompactionReport",
    "ResultStore",
    "default_store_path",
    "iter_store_records",
    "iter_store_results",
    "load_store_columns",
    "segments_dir",
]

#: Environment variable overriding the default on-disk store location.
STORE_ENV_VAR = "REPRO_RESULT_STORE"

#: WAL records that trigger a seal into a columnar segment.
DEFAULT_SEAL_THRESHOLD = 4096
#: Group-commit fsync policy: sync after this many unsynced appends ...
DEFAULT_FSYNC_BATCH = 64
#: ... or this many seconds since the last sync, whichever comes first.
DEFAULT_FSYNC_INTERVAL = 0.05

_LOG = get_logger("repro.engine.store")

# Store-level telemetry: one bump per get/put/compact, with durable I/O
# (append + flush + group fsync, segment seals) timed under ``store_io``.
_STORE_HITS = _obs_counter("store.get.hits", help="result-store cache hits")
_STORE_MISSES = _obs_counter("store.get.misses", help="result-store cache misses")
_STORE_PUTS = _obs_counter("store.puts", help="results appended to the store")
_STORE_PUT_BYTES = _obs_counter(
    "store.put_bytes", help="bytes appended to the store (before fsync)"
)
_STORE_COMPACTIONS = _obs_counter(
    "store.compactions", help="store compaction passes"
)
_STORE_SEALS = _obs_counter(
    "store.seals", help="WAL batches sealed into columnar segments"
)
_STORE_MALFORMED = _obs_counter(
    "store.malformed", help="records dropped because their payload no longer decodes"
)

# Catalog entry kinds: where a live record's payload currently is.
_KIND_WAL = 0  # payload dict held in memory, backed by a WAL line
_KIND_SEG = 1  # payload lives in a sealed segment: data = (segment name, row)
_KIND_EXT = 2  # payload persisted elsewhere (a worker's WAL): in-memory only

#: Exceptions meaning "this payload no longer matches the RunResult schema".
_DECODE_ERRORS = (KeyError, TypeError, ValueError)


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ResultStore.compact` pass recovered."""

    entries_kept: int
    lines_removed: int
    bytes_before: int
    bytes_after: int
    segments_before: int = 0
    segments_after: int = 0

    @property
    def bytes_saved(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    def __str__(self) -> str:
        base = (
            f"kept {self.entries_kept} entries, removed {self.lines_removed} "
            f"superseded records, saved {self.bytes_saved} bytes"
        )
        if self.segments_before or self.segments_after:
            base += (
                f" (folded {self.segments_before} segments "
                f"into {self.segments_after})"
            )
        return base


def default_store_path() -> Path:
    """The shared store location: ``$REPRO_RESULT_STORE`` or the user cache."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-cuckoo" / "results.jsonl"


def segments_dir(path: Union[str, Path]) -> Path:
    """Where a store at ``path`` keeps its segments and manifest."""
    path = Path(path)
    return path.with_name(path.name + ".segments")


@contextmanager
def _flock(handle) -> Iterator[None]:
    """Exclusive advisory lock on an open file, where the platform has one."""
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def _parse_wal_line(line: bytes) -> Optional[Tuple[str, Optional[int], Dict[str, object]]]:
    """``(key, ts, payload)`` of one WAL line, or ``None`` if unusable.

    ``ts`` is ``None`` for lines written by the pre-engine store, which
    had no commit timestamp; callers substitute scan position so legacy
    records always order before (and among themselves, by) anything
    stamped with ``time_ns``.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line.decode("utf-8"))
        key = record["key"]
        payload = record["result"]
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
        return None
    ts = record.get("ts")
    if not isinstance(ts, int):
        ts = None
    return key, ts, payload


def _wal_paths(path: Path) -> List[Path]:
    """Every WAL file of the store at ``path``: the main one + per-writer."""
    paths = [path]
    segdir = segments_dir(path)
    if segdir.is_dir():
        paths.extend(sorted(segdir.glob("wal-*.jsonl")))
    return paths


def _store_exists(path: Path) -> bool:
    """Whether anything of a store exists at ``path`` (WAL or segments)."""
    return path.exists() or (segments_dir(path) / MANIFEST_NAME).exists()


def _scan_winners(
    path: Path,
) -> Tuple[Path, Manifest, Dict[str, Tuple[int, int, Tuple]]]:
    """Locate the winning record per key without touching any payload.

    Returns ``(segdir, manifest, winners)`` where each winner is
    ``(ts, ordinal, locator)`` — locator ``("seg", name, row)`` for
    segment-resident records (found via the persisted per-segment key
    index) or ``("wal", path, offset)`` for WAL lines.  Sorting winners by
    ``(ts, ordinal)`` gives commit order.
    """
    segdir = segments_dir(path)
    manifest = (
        load_manifest(segdir)
        if (segdir / MANIFEST_NAME).exists()
        else Manifest(segments=[])
    )
    winners: Dict[str, Tuple[int, int, Tuple]] = {}
    ordinal = 0
    # Segment indices are columnar already; the winner per key falls out
    # of one lexsort over (key, ts, ordinal) — after sorting, each key's
    # rows are contiguous in ascending commit order, so the last row of
    # every key group is its winner.  Only the winning rows (distinct
    # keys) round-trip through Python objects.
    seg_keys: List[np.ndarray] = []
    seg_ts: List[np.ndarray] = []
    seg_pos: List[np.ndarray] = []
    seg_rows: List[np.ndarray] = []
    for position, meta in enumerate(manifest.segments):
        keys, ts_arr = read_segment_index(segdir, meta)
        rows = len(keys)
        if rows:
            seg_keys.append(np.asarray(keys))
            seg_ts.append(np.asarray(ts_arr, dtype=np.int64))
            seg_pos.append(np.full(rows, position, dtype=np.int64))
            seg_rows.append(np.arange(rows, dtype=np.int64))
        ordinal += rows
    if seg_keys:
        all_keys = np.concatenate(seg_keys)
        all_ts = np.concatenate(seg_ts)
        all_pos = np.concatenate(seg_pos)
        all_rows = np.concatenate(seg_rows)
        # Global ordinal is the concatenation order (rows scan in
        # manifest order), so ties in ts resolve to the later segment row
        # exactly like the sequential scan did.
        order = np.lexsort((np.arange(ordinal), all_ts, all_keys))
        sorted_keys = all_keys[order]
        group_last = np.empty(ordinal, dtype=bool)
        group_last[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        group_last[-1] = True
        names = [meta.name for meta in manifest.segments]
        for winner in order[group_last].tolist():
            winners[str(all_keys[winner])] = (
                int(all_ts[winner]),
                winner,
                ("seg", names[all_pos[winner]], int(all_rows[winner])),
            )
    for wal_path in _wal_paths(path):
        if not wal_path.exists():
            continue
        offset = 0
        with wal_path.open("rb") as handle:
            for raw in handle:
                line_offset = offset
                offset += len(raw)
                parsed = _parse_wal_line(raw)
                if parsed is None:
                    continue
                key, ts, _payload = parsed
                stamp = (ordinal if ts is None else ts, ordinal)
                ordinal += 1
                if key not in winners or stamp > winners[key][:2]:
                    winners[key] = (*stamp, ("wal", wal_path, line_offset))
    return segdir, manifest, winners


def iter_store_records(
    path: Union[str, Path],
) -> Iterator[Tuple[str, Dict[str, object]]]:
    """Stream the live ``(key, result)`` records of a store.

    Reload semantics match :class:`ResultStore`: the record with the
    greatest commit timestamp per key wins (for legacy stores, the last
    line), corrupt WAL lines are tolerated.  Records stream straight off
    the memory-mapped segment arrays and seeked WAL offsets — memory
    stays proportional to the number of distinct keys, never the sweep
    size.  Winners are yielded in commit order (for a single-writer
    store, write order), which aggregation downstream relies on for
    deterministic output.
    """
    path = Path(path)
    if not _store_exists(path) and not segments_dir(path).is_dir():
        return
    segdir, manifest, winners = _scan_winners(path)

    # Pass 2 — stream winners in commit order, opening each segment
    # (memory-mapped) and WAL file at most once.
    segments: Dict[str, LoadedSegment] = {}
    metas = {meta.name: meta for meta in manifest.segments}
    handles: Dict[Path, object] = {}
    try:
        for key, (_ts, _ordinal, locator) in sorted(
            winners.items(), key=lambda item: item[1][:2]
        ):
            if locator[0] == "seg":
                _kind, name, row = locator
                if name not in segments:
                    segments[name] = read_segment(segdir, metas[name])
                loaded = segments[name]
                _key, payload = decode_record_row(
                    loaded.main, loaded.hist, loaded.extras, row
                )
            else:
                _kind, wal_path, line_offset = locator
                if wal_path not in handles:
                    handles[wal_path] = wal_path.open("rb")
                handle = handles[wal_path]
                handle.seek(line_offset)
                payload = json.loads(handle.readline().decode("utf-8"))["result"]
            yield key, payload
    finally:
        for handle in handles.values():
            handle.close()


def load_store_columns(
    path: Union[str, Path], fields: Tuple[str, ...]
) -> Optional[Dict[str, np.ndarray]]:
    """The winning records of a store as flat column arrays, commit-ordered.

    This is the columnar fast path behind
    :meth:`repro.analysis.frame.SweepFrame.aggregate_columns`: segment
    rows are gathered straight off the memory-mapped arrays (no per-record
    dict decode), WAL-resident records are packed through the same codec,
    and each requested column comes back as one numpy array aligned across
    fields.  Returns ``None`` when the store cannot be served columnar —
    no records, a requested field the fixed schema does not carry, or any
    winning record living in a JSON extras side-channel — in which case
    callers fall back to the streaming reader.
    """
    path = Path(path)
    if not _store_exists(path) and not segments_dir(path).is_dir():
        return None
    segdir, manifest, winners = _scan_winners(path)
    if not winners:
        return None
    ordered = sorted(winners.values(), key=lambda winner: winner[:2])

    seg_rows: Dict[str, List[int]] = {}
    seg_positions: Dict[str, List[int]] = {}
    wal_lines: Dict[Path, List[Tuple[int, int]]] = {}
    for position, (_ts, _ordinal, locator) in enumerate(ordered):
        if locator[0] == "seg":
            seg_rows.setdefault(locator[1], []).append(locator[2])
            seg_positions.setdefault(locator[1], []).append(position)
        else:
            wal_lines.setdefault(locator[1], []).append((locator[2], position))

    chunks: Dict[str, List[np.ndarray]] = {field: [] for field in fields}
    order_chunks: List[np.ndarray] = []
    metas = {meta.name: meta for meta in manifest.segments}
    for meta in manifest.segments:
        rows = seg_rows.get(meta.name)
        if not rows:
            continue
        loaded = read_segment(segdir, metas[meta.name])
        if loaded.extras and any(row in loaded.extras for row in rows):
            return None
        names = loaded.main.dtype.names
        if any(field not in names for field in fields):
            return None
        take = np.asarray(rows, dtype=np.int64)
        sub = loaded.main[take]
        for field in fields:
            chunks[field].append(sub[field])
        order_chunks.append(np.asarray(seg_positions[meta.name], dtype=np.int64))

    wal_records: List[Tuple[str, int, Dict[str, object]]] = []
    wal_positions: List[int] = []
    for wal_path, locations in wal_lines.items():
        with wal_path.open("rb") as handle:
            for offset, position in locations:
                handle.seek(offset)
                parsed = _parse_wal_line(handle.readline())
                if parsed is None:  # pragma: no cover - raced truncation
                    return None
                key, ts, payload = parsed
                wal_records.append((key, 0 if ts is None else ts, payload))
                wal_positions.append(position)
    if wal_records:
        batch = encode_record_batch(wal_records)
        if batch.extras:
            return None
        names = batch.main.dtype.names
        if any(field not in names for field in fields):
            return None
        for field in fields:
            chunks[field].append(batch.main[field])
        order_chunks.append(np.asarray(wal_positions, dtype=np.int64))

    if not order_chunks:
        return None
    order = np.concatenate(order_chunks)
    sorter = np.argsort(order, kind="stable")
    return {
        field: np.concatenate(chunks[field])[sorter] for field in fields
    }


def iter_store_results(path: Union[str, Path]) -> Iterator[RunResult]:
    """Stream the live records of a store as :class:`RunResult` values.

    Records whose payload no longer matches the current :class:`RunResult`
    schema are skipped, mirroring :meth:`ResultStore.iter_results`.
    """
    for _key, payload in iter_store_records(path):
        try:
            yield RunResult.from_dict(payload)
        except _DECODE_ERRORS:
            continue


class ResultStore:
    """Content-addressed cache of :class:`RunResult` records.

    ``writer`` names a concurrent writer: its appends go to a private WAL
    inside the segment directory instead of the shared store path, so any
    number of writers can put into one store without interleaving.
    ``preload=False`` skips reading the existing catalog — the right mode
    for write-only handles such as pool workers.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        *,
        writer: str = "",
        preload: bool = True,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
    ) -> None:
        self._path = Path(path) if path is not None else default_store_path()
        self._writer = writer
        self._segdir = segments_dir(self._path)
        if writer:
            self._wal_path = self._segdir / f"wal-{writer}.jsonl"
        else:
            self._wal_path = self._path
        self._seal_threshold = seal_threshold
        self._fsync_batch = fsync_batch
        self._fsync_interval = fsync_interval
        # Catalog: key -> (ts, ordinal, kind, data). data is the payload
        # dict for WAL/external entries, (segment name, row) for sealed.
        self._catalog: Dict[str, Tuple[int, int, int, object]] = {}
        self._segmeta: Dict[str, SegmentMeta] = {}
        self._loaded: Dict[str, LoadedSegment] = {}
        self._ordinal = 0
        self._own_wal_count = 0
        self._unsynced = 0
        self._last_fsync = 0.0
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.malformed = 0
        if preload:
            self._load()

    def _load(self) -> None:
        if (self._segdir / MANIFEST_NAME).exists():
            manifest = load_manifest(self._segdir)
            for meta in manifest.segments:
                self._segmeta[meta.name] = meta
                keys, ts_arr = read_segment_index(self._segdir, meta)
                for row in range(len(keys)):
                    self._note(
                        str(keys[row]), int(ts_arr[row]), _KIND_SEG, (meta.name, row)
                    )
        for wal_path in _wal_paths(self._path):
            if not wal_path.exists():
                continue
            own = wal_path == self._wal_path
            with wal_path.open("rb") as handle:
                for raw in handle:
                    parsed = _parse_wal_line(raw)
                    if parsed is None:
                        continue
                    key, ts, payload = parsed
                    if own:
                        self._own_wal_count += 1
                    self._note(
                        key, self._ordinal if ts is None else ts, _KIND_WAL, payload
                    )

    def _note(self, key: str, ts: int, kind: int, data: object) -> None:
        """Catalog ``key`` at commit stamp ``ts`` if it wins over what's there."""
        ordinal = self._ordinal
        self._ordinal += 1
        current = self._catalog.get(key)
        if current is None or (ts, ordinal) > current[:2]:
            self._catalog[key] = (ts, ordinal, kind, data)

    def _payload(self, entry: Tuple[int, int, int, object]) -> Dict[str, object]:
        _ts, _ordinal, kind, data = entry
        if kind != _KIND_SEG:
            return data  # type: ignore[return-value]
        name, row = data  # type: ignore[misc]
        loaded = self._segment(name)
        _key, payload = decode_record_row(loaded.main, loaded.hist, loaded.extras, row)
        return payload

    def _segment(self, name: str) -> LoadedSegment:
        if name not in self._loaded:
            self._loaded[name] = read_segment(self._segdir, self._segmeta[name])
        return self._loaded[name]

    def _timeline_dir(self) -> Path:
        return self._path.with_name(self._path.name + ".timelines")

    # -- queries -------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def writer(self) -> str:
        return self._writer

    def __len__(self) -> int:
        return len(self._catalog)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.key() in self._catalog

    def keys(self) -> List[str]:
        return list(self._catalog)

    def segment_names(self) -> List[str]:
        """Names of the sealed segments this store knows about."""
        return list(self._segmeta)

    def timeline_path(self, key: str) -> Path:
        """Where the timeline sidecar for ``key`` lives (may not exist)."""
        return self._timeline_dir() / f"{key}.npz"

    def get_timeline(self, key: str) -> Optional[Timeline]:
        """The stored timeline sidecar for ``key``, or ``None``."""
        path = self.timeline_path(key)
        if not path.exists():
            return None
        try:
            return load_timeline(path)
        except (OSError, ValueError, KeyError) as exc:
            # Tolerated like a corrupt WAL line, but never silently: rot
            # here just makes every request for this point re-simulate.
            _LOG.warning(
                "corrupt timeline sidecar; treating as absent",
                extra={"key": key, "sidecar": str(path), "error": repr(exc)},
            )
            return None

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """Cached result for ``spec``, counting a hit or a miss.

        A spec requesting a timeline only hits when a sidecar sampled at
        the same cadence is present — otherwise the cached record cannot
        serve the request and the point must re-simulate with collection
        enabled (the re-run overwrites the record *and* writes the
        sidecar, so the next request hits).
        """
        key = spec.key()
        entry = self._catalog.get(key)
        if entry is None:
            self.misses += 1
            _STORE_MISSES.inc()
            return None
        try:
            result = RunResult.from_dict(self._payload(entry))
        except _DECODE_ERRORS as exc:
            # A record that no longer decodes is dropped (and the miss
            # re-simulates it) instead of poisoning every read.
            self.malformed += 1
            _STORE_MALFORMED.inc()
            _LOG.warning(
                "dropping malformed store record",
                extra={"key": key, "error": repr(exc)},
            )
            self._catalog.pop(key, None)
            self.misses += 1
            _STORE_MISSES.inc()
            return None
        timeline = None
        if spec.timeline_interval is not None:
            timeline = self.get_timeline(key)
            if (
                timeline is None
                or timeline.interval != spec.timeline_interval
                or timeline.occupancy_interval != spec.occupancy_sample_interval
            ):
                self.misses += 1
                _STORE_MISSES.inc()
                return None
        self.hits += 1
        _STORE_HITS.inc()
        if timeline is not None:
            result = result.with_timeline(timeline)
        return result

    def iter_results(self) -> Iterator[RunResult]:
        for key in list(self._catalog):
            entry = self._catalog.get(key)
            if entry is None:
                continue
            try:
                yield RunResult.from_dict(self._payload(entry))
            except _DECODE_ERRORS:
                self.malformed += 1
                _STORE_MALFORMED.inc()

    def iter_records(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        """The live ``(key, payload)`` records, in commit order."""
        for key, entry in sorted(self._catalog.items(), key=lambda item: item[1][:2]):
            yield key, self._payload(entry)

    # -- updates -------------------------------------------------------------
    def put(self, result: RunResult) -> None:
        """Persist ``result``; a key already present is overwritten in memory
        and superseded on disk (the newest commit timestamp wins on reload).

        The append is flushed before returning — a concurrent reader sees
        it immediately — while the fsync is group-committed (first write,
        then every :data:`DEFAULT_FSYNC_BATCH` records or
        :data:`DEFAULT_FSYNC_INTERVAL` seconds).  Call :meth:`flush` to
        force the sync point, e.g. before handing off to another process.
        """
        key = result.spec.key()
        record = result.to_dict()
        ts = time.time_ns()
        line = json.dumps({"key": key, "ts": ts, "result": record}) + "\n"
        with _TRACER.span("store_io"):
            self._wal_path.parent.mkdir(parents=True, exist_ok=True)
            with self._wal_path.open("a", encoding="utf-8") as handle:
                with _flock(handle):
                    handle.write(line)
                    handle.flush()
                    self._unsynced += 1
                    now = time.monotonic()
                    if (
                        self.writes == 0
                        or self._unsynced >= self._fsync_batch
                        or now - self._last_fsync >= self._fsync_interval
                    ):
                        os.fsync(handle.fileno())
                        self._unsynced = 0
                        self._last_fsync = now
        self._note(key, ts, _KIND_WAL, record)
        self._own_wal_count += 1
        self.writes += 1
        _STORE_PUTS.inc()
        _STORE_PUT_BYTES.add(len(line))
        timeline = getattr(result, "timeline", None)
        if timeline is not None:
            with _TRACER.span("store_io"):
                self._timeline_dir().mkdir(parents=True, exist_ok=True)
                written = save_timeline(self.timeline_path(key), timeline)
            _STORE_PUT_BYTES.add(written)
        if self._own_wal_count >= self._seal_threshold:
            self.seal()

    def note_external(self, result: RunResult) -> None:
        """Catalog a result another writer already persisted to this store.

        The pool runner's workers append to their own WALs; the parent
        calls this with the result that crossed the queue so its open
        handle serves it without re-writing a byte.
        """
        self._note(result.spec.key(), time.time_ns(), _KIND_EXT, result.to_dict())

    def flush(self) -> None:
        """Force the group-commit fsync point for this writer's WAL."""
        if self._unsynced == 0 or not self._wal_path.exists():
            return
        with self._wal_path.open("a", encoding="utf-8") as handle:
            os.fsync(handle.fileno())
        self._unsynced = 0
        self._last_fsync = time.monotonic()

    def seal(self) -> Optional[SegmentMeta]:
        """Seal this writer's WAL into an immutable columnar segment.

        Runs under the WAL lock: the lines are re-read from disk (the
        source of truth), packed via the columnar codec, written with the
        crash-safe tmp+fsync+replace discipline, committed into the
        manifest, and only then is the WAL truncated — so a crash at any
        point leaves either the old WAL or a fully committed segment,
        never a manifest entry over torn data.  Returns the new segment's
        meta, or ``None`` if the WAL held no records.
        """
        if not self._wal_path.exists():
            return None
        with _TRACER.span("store_io"):
            with self._wal_path.open("r+b") as handle:
                with _flock(handle):
                    records: List[Tuple[str, int, Dict[str, object]]] = []
                    latest: Dict[str, int] = {}
                    for position, raw in enumerate(handle):
                        parsed = _parse_wal_line(raw)
                        if parsed is None:
                            continue
                        key, ts, payload = parsed
                        records.append((key, position if ts is None else ts, payload))
                        latest[key] = len(records) - 1
                    if not records:
                        self._own_wal_count = 0
                        return None
                    # Within one WAL the last line per key wins outright;
                    # sealing folds those duplicates for free.
                    records = [
                        records[index] for index in sorted(latest.values())
                    ]
                    name = f"seg-{time.time_ns():020d}-{os.getpid()}"
                    if self._writer:
                        name += f"-{self._writer}"
                    batch = encode_record_batch(records)
                    meta = write_segment(
                        self._segdir, name, batch, writer=self._writer
                    )
                    merge_manifest(self._segdir, add=[meta])
                    handle.seek(0)
                    handle.truncate()
                    os.fsync(handle.fileno())
        self._segmeta[meta.name] = meta
        self._loaded[meta.name] = LoadedSegment(
            meta=meta, main=batch.main, hist=batch.hist, extras=batch.extras
        )
        for row, (key, ts, _payload) in enumerate(records):
            entry = self._catalog.get(key)
            if entry is not None and entry[0] == ts and entry[2] == _KIND_WAL:
                self._catalog[key] = (ts, entry[1], _KIND_SEG, (meta.name, row))
        self._own_wal_count = 0
        self._unsynced = 0
        _STORE_SEALS.inc()
        return meta

    def clear(self) -> None:
        """Drop every cached result, on disk and in memory."""
        self._catalog.clear()
        self._segmeta.clear()
        self._loaded.clear()
        self._own_wal_count = 0
        self._unsynced = 0
        if self._path.exists():
            self._path.unlink()
        if self._segdir.exists():
            for child in self._segdir.iterdir():
                try:
                    child.unlink()
                except OSError:  # pragma: no cover - concurrent removal
                    pass
            try:
                self._segdir.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass
        sidecars = self._timeline_dir()
        if sidecars.exists():
            for path in sidecars.glob("*.npz"):
                path.unlink()
            try:
                sidecars.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass

    def compact(self) -> "CompactionReport":
        """Fold the store down to one record per live key.

        The store is append-only, so re-running a point leaves superseded
        records behind.  A store that never sealed compacts exactly as the
        JSONL engine always did: the WAL is rewritten through a sibling
        temp file, fsynced, and :func:`os.replace`\\ d, so a crash
        mid-compact leaves the original intact.  A sealed store instead
        folds every live record into one fresh segment, commits it, and
        drops the dead segments and WAL lines.  Timeline sidecars whose
        key is no longer live are removed in the same pass.

        Compaction assumes no concurrent writers (it truncates their
        WALs); run it from the CLI between sweeps, not during one.
        """
        self._prune_timelines()
        if self._segmeta:
            return self._compact_segments()
        bytes_before = self._path.stat().st_size if self._path.exists() else 0
        lines_before = 0
        if self._path.exists():
            with self._path.open("r", encoding="utf-8") as handle:
                lines_before = sum(1 for line in handle if line.strip())
        if not self._catalog:
            if self._path.exists():
                self._path.unlink()
            return CompactionReport(
                entries_kept=0,
                lines_removed=lines_before,
                bytes_before=bytes_before,
                bytes_after=0,
            )
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.with_name(self._path.name + ".tmp")
        try:
            with _TRACER.span("store_io"):
                with tmp.open("w", encoding="utf-8") as handle:
                    for key, entry in self._catalog.items():
                        handle.write(
                            json.dumps(
                                {
                                    "key": key,
                                    "ts": entry[0],
                                    "result": self._payload(entry),
                                }
                            )
                            + "\n"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self._path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        _STORE_COMPACTIONS.inc()
        bytes_after = self._path.stat().st_size
        return CompactionReport(
            entries_kept=len(self._catalog),
            lines_removed=lines_before - len(self._catalog),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    def _disk_usage(self) -> Tuple[int, int]:
        """``(wal_bytes, segment_bytes)`` currently on disk."""
        wal_bytes = sum(
            wal.stat().st_size for wal in _wal_paths(self._path) if wal.exists()
        )
        segment_bytes = 0
        if self._segdir.is_dir():
            for meta in self._segmeta.values():
                for file_name in segment_file_names(meta.name):
                    file_path = self._segdir / file_name
                    if file_path.exists():
                        segment_bytes += file_path.stat().st_size
            manifest_path = self._segdir / MANIFEST_NAME
            if manifest_path.exists():
                segment_bytes += manifest_path.stat().st_size
        return wal_bytes, segment_bytes

    def _compact_segments(self) -> "CompactionReport":
        wal_bytes, segment_bytes = self._disk_usage()
        bytes_before = wal_bytes + segment_bytes
        rows_before = sum(meta.rows for meta in self._segmeta.values())
        for wal in _wal_paths(self._path):
            if wal.exists():
                with wal.open("rb") as handle:
                    rows_before += sum(1 for raw in handle if raw.strip())
        segments_before = len(self._segmeta)
        old_names = list(self._segmeta)

        records = [
            (key, entry[0], self._payload(entry))
            for key, entry in sorted(
                self._catalog.items(), key=lambda item: item[1][:2]
            )
        ]
        with _TRACER.span("store_io"):
            new_metas: List[SegmentMeta] = []
            if records:
                name = f"seg-{time.time_ns():020d}-{os.getpid()}-compacted"
                batch = encode_record_batch(records)
                meta = write_segment(self._segdir, name, batch, writer=self._writer)
                new_metas.append(meta)
            merge_manifest(self._segdir, add=new_metas, drop=old_names)
            for stale in old_names:
                for file_name in segment_file_names(stale):
                    try:
                        (self._segdir / file_name).unlink()
                    except OSError:
                        pass
            for wal in _wal_paths(self._path):
                if wal == self._path:
                    # Keep the store path present (it is how tooling
                    # detects a store) but empty.
                    with wal.open("w", encoding="utf-8"):
                        pass
                elif wal.exists():
                    try:
                        wal.unlink()
                    except OSError:
                        pass

        self._segmeta.clear()
        self._loaded.clear()
        self._own_wal_count = 0
        if records:
            self._segmeta[meta.name] = meta
            self._loaded[meta.name] = LoadedSegment(
                meta=meta, main=batch.main, hist=batch.hist, extras=batch.extras
            )
            for row, (key, ts, _payload) in enumerate(records):
                entry = self._catalog[key]
                self._catalog[key] = (ts, entry[1], _KIND_SEG, (meta.name, row))
        _STORE_COMPACTIONS.inc()
        wal_bytes, segment_bytes = self._disk_usage()
        return CompactionReport(
            entries_kept=len(self._catalog),
            lines_removed=rows_before - len(records),
            bytes_before=bytes_before,
            bytes_after=wal_bytes + segment_bytes,
            segments_before=segments_before,
            segments_after=len(self._segmeta),
        )

    # -- JSONL compatibility -------------------------------------------------
    def export_jsonl(self, destination: Union[str, Path]) -> int:
        """Write the live records as plain last-wins JSONL; returns the count.

        The output format is exactly what the pre-engine store kept on
        disk (``{"key": ..., "result": ...}`` per line), so an export of a
        migrated store reproduces the original file last-wins-equivalently.
        """
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        with destination.open("w", encoding="utf-8") as handle:
            for key, payload in self.iter_records():
                handle.write(json.dumps({"key": key, "result": payload}) + "\n")
                count += 1
        return count

    def import_jsonl(self, source: Union[str, Path]) -> Tuple[int, int]:
        """Import records from a JSONL store file; ``(imported, dropped)``.

        Every payload is validated through :meth:`RunResult.from_dict`
        before it is admitted — a malformed record is dropped and counted
        instead of poisoning later reads.
        """
        imported = 0
        dropped = 0
        for _key, payload in iter_store_records(source):
            try:
                result = RunResult.from_dict(payload)
            except _DECODE_ERRORS as exc:
                dropped += 1
                self.malformed += 1
                _STORE_MALFORMED.inc()
                _LOG.warning(
                    "dropping malformed record on import",
                    extra={"source": str(source), "error": repr(exc)},
                )
                continue
            self.put(result)
            imported += 1
        self.flush()
        return imported, dropped

    def stats(self) -> Dict[str, object]:
        """Storage-engine statistics for ``repro-run cache stats``."""
        wal_bytes, segment_bytes = self._disk_usage()
        wal_records = sum(
            1 for entry in self._catalog.values() if entry[2] == _KIND_WAL
        )
        return {
            "path": str(self._path),
            "entries": len(self._catalog),
            "segments": len(self._segmeta),
            "segment_rows": sum(meta.rows for meta in self._segmeta.values()),
            "wal_records": wal_records,
            "wal_bytes": wal_bytes,
            "segment_bytes": segment_bytes,
            "seal_threshold": self._seal_threshold,
            "writer": self._writer,
        }

    def _prune_timelines(self) -> None:
        """Remove sidecars for keys the store no longer holds."""
        sidecars = self._timeline_dir()
        if not sidecars.exists():
            return
        for path in sidecars.glob("*.npz"):
            if path.stem not in self._catalog:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent removal
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore({str(self._path)!r}, entries={len(self._catalog)}, "
            f"segments={len(self._segmeta)})"
        )
