"""Content-addressed on-disk result store.

Results live in an append-only JSONL file, one record per line, keyed by
the :meth:`RunSpec.key` content hash.  Because the key covers every spec
field plus the engine's :data:`~repro.engine.spec.SPEC_VERSION`, a cached
result is only ever returned for a bit-identical simulation point; any
parameter change (or a version bump after simulator changes) misses the
cache and re-simulates.  The store is shared across experiments — a point
that Figure 9 already simulated is a cache hit when Figure 10 asks for the
same geometry.

Counter timelines (:mod:`repro.obs.timeline`) are columnar numpy data, so
they never ride in the JSONL: a result carrying one also writes a compact
quantized ``.npz`` sidecar under ``<store>.timelines/<key>.npz``.  The
spec key excludes ``timeline_interval``, so the JSONL record is shared
between timeline and non-timeline requests; :meth:`ResultStore.get`
reports a *miss* when the spec asks for a timeline the sidecar cannot
serve (absent, or sampled at a different cadence), which makes the runner
re-simulate exactly that point with collection enabled.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.engine.results import RunResult
from repro.engine.spec import RunSpec
from repro.obs.metrics import counter as _obs_counter
from repro.obs.timeline import Timeline, load_timeline, save_timeline
from repro.obs.tracing import TRACER as _TRACER

__all__ = [
    "CompactionReport",
    "ResultStore",
    "default_store_path",
    "iter_store_records",
    "iter_store_results",
]

#: Environment variable overriding the default on-disk store location.
STORE_ENV_VAR = "REPRO_RESULT_STORE"

# Store-level telemetry: one bump per get/put/compact, with the durable
# append (write + flush + fsync) timed under the ``store_io`` span.
_STORE_HITS = _obs_counter("store.get.hits", help="result-store cache hits")
_STORE_MISSES = _obs_counter("store.get.misses", help="result-store cache misses")
_STORE_PUTS = _obs_counter("store.puts", help="results appended to the store")
_STORE_PUT_BYTES = _obs_counter(
    "store.put_bytes", help="bytes appended to the store (before fsync)"
)
_STORE_COMPACTIONS = _obs_counter(
    "store.compactions", help="store compaction passes"
)


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ResultStore.compact` pass recovered."""

    entries_kept: int
    lines_removed: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_saved(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    def __str__(self) -> str:
        return (
            f"kept {self.entries_kept} entries, removed {self.lines_removed} "
            f"superseded records, saved {self.bytes_saved} bytes"
        )


def default_store_path() -> Path:
    """The shared store location: ``$REPRO_RESULT_STORE`` or the user cache."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-cuckoo" / "results.jsonl"


def iter_store_records(
    path: Union[str, Path],
) -> Iterator[Tuple[str, Dict[str, object]]]:
    """Stream the live ``(key, result)`` records of a store file.

    Reload semantics match :class:`ResultStore` (the last record per key
    wins, corrupt lines are tolerated) but the file is never materialized:
    a first pass indexes the byte offset of each key's winning line, a
    second pass seeks to those offsets and parses one record at a time, so
    memory stays proportional to the number of distinct keys rather than
    the sweep size.  Records are yielded in file order of their winning
    line (i.e. write order), which aggregation downstream relies on for
    deterministic output.
    """
    path = Path(path)
    if not path.exists():
        return
    winners: Dict[str, int] = {}
    offset = 0
    with path.open("rb") as handle:
        for raw in handle:
            line_offset = offset
            offset += len(raw)
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                key = record["key"]
                record["result"]
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
                continue
            winners[key] = line_offset
    with path.open("rb") as handle:
        for key, line_offset in sorted(winners.items(), key=lambda item: item[1]):
            handle.seek(line_offset)
            record = json.loads(handle.readline().decode("utf-8"))
            yield key, record["result"]


def iter_store_results(path: Union[str, Path]) -> Iterator[RunResult]:
    """Stream the live records of a store file as :class:`RunResult` values.

    Records whose payload no longer matches the current :class:`RunResult`
    schema are skipped, mirroring the constructor's tolerance for stale
    lines.
    """
    for _key, payload in iter_store_records(path):
        try:
            yield RunResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            continue


class ResultStore:
    """JSONL-backed, content-addressed cache of :class:`RunResult` records."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self._path = Path(path) if path is not None else default_store_path()
        self._records: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._load()

    def _load(self) -> None:
        if not self._path.exists():
            return
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                    result = record["result"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # tolerate truncated/corrupt lines
                self._records[key] = result  # later lines win

    def _timeline_dir(self) -> Path:
        return self._path.with_name(self._path.name + ".timelines")

    # -- queries -------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.key() in self._records

    def keys(self) -> List[str]:
        return list(self._records)

    def timeline_path(self, key: str) -> Path:
        """Where the timeline sidecar for ``key`` lives (may not exist)."""
        return self._timeline_dir() / f"{key}.npz"

    def get_timeline(self, key: str) -> Optional[Timeline]:
        """The stored timeline sidecar for ``key``, or ``None``."""
        path = self.timeline_path(key)
        if not path.exists():
            return None
        try:
            return load_timeline(path)
        except (OSError, ValueError, KeyError):
            return None  # tolerate a truncated/corrupt sidecar, like _load

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """Cached result for ``spec``, counting a hit or a miss.

        A spec requesting a timeline only hits when a sidecar sampled at
        the same cadence is present — otherwise the cached record cannot
        serve the request and the point must re-simulate with collection
        enabled (the re-run overwrites the record *and* writes the
        sidecar, so the next request hits).
        """
        record = self._records.get(spec.key())
        if record is None:
            self.misses += 1
            _STORE_MISSES.inc()
            return None
        timeline = None
        if spec.timeline_interval is not None:
            timeline = self.get_timeline(spec.key())
            if (
                timeline is None
                or timeline.interval != spec.timeline_interval
                or timeline.occupancy_interval != spec.occupancy_sample_interval
            ):
                self.misses += 1
                _STORE_MISSES.inc()
                return None
        self.hits += 1
        _STORE_HITS.inc()
        result = RunResult.from_dict(record)
        if timeline is not None:
            result = result.with_timeline(timeline)
        return result

    def iter_results(self) -> Iterator[RunResult]:
        for record in self._records.values():
            yield RunResult.from_dict(record)

    # -- updates -------------------------------------------------------------
    def put(self, result: RunResult) -> None:
        """Persist ``result``; a key already present is overwritten in memory
        and appended on disk (last record wins on reload).

        The append is flushed and fsynced before the write counts as
        durable — the store is shared across experiments and processes, so
        a result it reported as written must survive a crash.
        """
        key = result.spec.key()
        record = result.to_dict()
        self._records[key] = record
        line = json.dumps({"key": key, "result": record}) + "\n"
        with _TRACER.span("store_io"):
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        self.writes += 1
        _STORE_PUTS.inc()
        _STORE_PUT_BYTES.add(len(line))
        timeline = getattr(result, "timeline", None)
        if timeline is not None:
            with _TRACER.span("store_io"):
                self._timeline_dir().mkdir(parents=True, exist_ok=True)
                written = save_timeline(self.timeline_path(key), timeline)
            _STORE_PUT_BYTES.add(written)

    def clear(self) -> None:
        """Drop every cached result, on disk and in memory."""
        self._records.clear()
        if self._path.exists():
            self._path.unlink()
        sidecars = self._timeline_dir()
        if sidecars.exists():
            for path in sidecars.glob("*.npz"):
                path.unlink()
            try:
                sidecars.rmdir()
            except OSError:  # pragma: no cover - foreign files left behind
                pass

    def compact(self) -> "CompactionReport":
        """Rewrite the file with one line per live key (drops superseded lines).

        The store is append-only, so re-running a point (or bumping
        :data:`~repro.engine.spec.SPEC_VERSION` semantics under the same
        key) leaves superseded duplicate lines behind; compaction rewrites
        the file keeping only the last record per key and reports how many
        lines and bytes that recovered.

        The rewrite is crash-safe: records are written to a sibling temp
        file, fsynced, and :func:`os.replace`\\ d over the live file, so a
        crash mid-compact leaves the original store intact rather than a
        truncated cache.  Timeline sidecars whose key is no longer live
        are removed in the same pass.
        """
        self._prune_timelines()
        bytes_before = self._path.stat().st_size if self._path.exists() else 0
        lines_before = 0
        if self._path.exists():
            with self._path.open("r", encoding="utf-8") as handle:
                lines_before = sum(1 for line in handle if line.strip())
        if not self._records:
            if self._path.exists():
                self._path.unlink()
            return CompactionReport(
                entries_kept=0,
                lines_removed=lines_before,
                bytes_before=bytes_before,
                bytes_after=0,
            )
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.with_name(self._path.name + ".tmp")
        try:
            with _TRACER.span("store_io"):
                with tmp.open("w", encoding="utf-8") as handle:
                    for key, record in self._records.items():
                        handle.write(
                            json.dumps({"key": key, "result": record}) + "\n"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self._path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        _STORE_COMPACTIONS.inc()
        bytes_after = self._path.stat().st_size
        return CompactionReport(
            entries_kept=len(self._records),
            lines_removed=lines_before - len(self._records),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )

    def _prune_timelines(self) -> None:
        """Remove sidecars for keys the store no longer holds."""
        sidecars = self._timeline_dir()
        if not sidecars.exists():
            return
        for path in sidecars.glob("*.npz"):
            if path.stem not in self._records:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent removal
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self._path)!r}, entries={len(self._records)})"
