"""``python -m repro.engine`` — the engine's unified command line."""

import sys

from repro.engine.cli import main

if __name__ == "__main__":
    sys.exit(main())
