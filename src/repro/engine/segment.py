"""Sealed columnar segments and the manifest that unifies them.

A :class:`~repro.engine.store.ResultStore` directory (``<store>.segments/``)
holds immutable *segments* — batches of records sealed from the JSONL WAL by
:func:`write_segment` — plus ``MANIFEST.json``, the single source of truth
for which segments exist.  One segment ``<name>`` is at most four files:

``<name>.main.npy``
    numpy structured array from
    :func:`repro.engine.results.encode_record_batch` — one row per record,
    flat spec/result columns plus ``key``/``ts``/``hist_off``/``hist_len``.
``<name>.hist.npy``
    ``(total_pairs, 2)`` int64 heap of attempt-histogram pairs, windowed
    per row by ``hist_off``/``hist_len``.
``<name>.index.npz``
    the persisted key index: just the ``key`` and ``ts`` columns, so a
    fresh open builds its key → (segment, row) map without touching the
    (much larger) main array.
``<name>.extras.json``
    JSON side-channel ``{row: payload}`` for records the fixed columns
    cannot represent; written only when non-empty.

Crash-safety contract: every segment file is written tmp + fsync +
``os.replace`` (and the directory fsynced) **before** the manifest commit
that references it, and the manifest itself commits the same way — so a
manifest can never name a torn segment.  Multi-writer safety: manifest
read-modify-write cycles run under an ``flock`` on ``<segdir>/.lock``
(:func:`manifest_lock`), so concurrent writers sealing their own segments
merge through :func:`merge_manifest` without losing each other's entries.
"""

from __future__ import annotations

import io
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.results import EncodedBatch
from repro.engine.spec import SPEC_VERSION

try:  # pragma: no cover - posix-only locking, exercised on linux CI
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback: no inter-process locks
    fcntl = None

__all__ = [
    "SegmentMeta",
    "LoadedSegment",
    "Manifest",
    "MANIFEST_NAME",
    "write_segment",
    "read_segment",
    "read_segment_index",
    "load_manifest",
    "commit_manifest",
    "merge_manifest",
    "manifest_lock",
    "segment_file_names",
]

MANIFEST_NAME = "MANIFEST.json"
_LOCK_NAME = ".lock"


@dataclass(frozen=True)
class SegmentMeta:
    """One manifest entry: a sealed, immutable segment."""

    name: str
    rows: int
    writer: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "rows": self.rows, "writer": self.writer}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentMeta":
        return cls(
            name=str(data["name"]),
            rows=int(data["rows"]),
            writer=str(data.get("writer", "")),
        )


@dataclass
class Manifest:
    """The committed segment list, stamped with the codec version."""

    spec_version: int = SPEC_VERSION
    segments: List[SegmentMeta] = field(default_factory=list)

    def names(self) -> List[str]:
        return [meta.name for meta in self.segments]

    def total_rows(self) -> int:
        return sum(meta.rows for meta in self.segments)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec_version": self.spec_version,
            "segments": [meta.to_dict() for meta in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Manifest":
        return cls(
            spec_version=int(data.get("spec_version", SPEC_VERSION)),
            segments=[
                SegmentMeta.from_dict(entry)
                for entry in data.get("segments", [])
            ],
        )


@dataclass(frozen=True)
class LoadedSegment:
    """An open segment: memory-mapped arrays plus the extras side-channel."""

    meta: SegmentMeta
    main: np.ndarray
    hist: np.ndarray
    extras: Dict[int, Dict[str, object]]


def segment_file_names(name: str) -> Tuple[str, str, str, str]:
    """All on-disk file names a segment ``name`` may own."""
    return (
        f"{name}.main.npy",
        f"{name}.hist.npy",
        f"{name}.index.npz",
        f"{name}.extras.json",
    )


def _fsync_dir(directory: Path) -> None:
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so it is either absent or complete."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def write_segment(
    segdir: Path,
    name: str,
    batch: EncodedBatch,
    writer: str = "",
) -> SegmentMeta:
    """Durably write one sealed segment; safe to crash at any point.

    All files land via tmp + fsync + replace, so callers may commit the
    returned meta into the manifest knowing the data beneath it is whole.
    """
    segdir.mkdir(parents=True, exist_ok=True)
    main_name, hist_name, index_name, extras_name = segment_file_names(name)
    _atomic_write_bytes(segdir / main_name, _npy_bytes(batch.main))
    _atomic_write_bytes(segdir / hist_name, _npy_bytes(batch.hist))

    index_buffer = io.BytesIO()
    np.savez(index_buffer, keys=batch.main["key"], ts=batch.main["ts"])
    _atomic_write_bytes(segdir / index_name, index_buffer.getvalue())

    if batch.extras:
        payload = {str(row): value for row, value in batch.extras.items()}
        _atomic_write_bytes(
            segdir / extras_name,
            json.dumps(payload, separators=(",", ":")).encode("utf-8"),
        )
    return SegmentMeta(name=name, rows=int(batch.main.shape[0]), writer=writer)


def read_segment(segdir: Path, meta: SegmentMeta, mmap: bool = True) -> LoadedSegment:
    """Open a sealed segment, memory-mapping the arrays by default."""
    main_name, hist_name, _index_name, extras_name = segment_file_names(meta.name)
    mode: Optional[str] = "r" if mmap else None
    main = np.load(segdir / main_name, mmap_mode=mode, allow_pickle=False)
    hist = np.load(segdir / hist_name, mmap_mode=mode, allow_pickle=False)
    extras: Dict[int, Dict[str, object]] = {}
    extras_path = segdir / extras_name
    if extras_path.exists():
        with open(extras_path, "r", encoding="utf-8") as handle:
            extras = {int(row): value for row, value in json.load(handle).items()}
    return LoadedSegment(meta=meta, main=main, hist=hist, extras=extras)


def read_segment_index(segdir: Path, meta: SegmentMeta) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(keys, ts)`` arrays of a segment — the cheap open-time read."""
    _main_name, _hist_name, index_name, _extras_name = segment_file_names(meta.name)
    with np.load(segdir / index_name, allow_pickle=False) as bundle:
        return bundle["keys"], bundle["ts"]


def load_manifest(segdir: Path) -> Manifest:
    """The committed manifest, or an empty one if none exists yet."""
    path = segdir / MANIFEST_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return Manifest.from_dict(json.load(handle))
    except FileNotFoundError:
        return Manifest()


def commit_manifest(segdir: Path, manifest: Manifest) -> None:
    """Atomically publish ``manifest`` as the store's segment list."""
    segdir.mkdir(parents=True, exist_ok=True)
    _atomic_write_bytes(
        segdir / MANIFEST_NAME,
        json.dumps(manifest.to_dict(), indent=2).encode("utf-8"),
    )


@contextmanager
def manifest_lock(segdir: Path) -> Iterator[None]:
    """Exclusive inter-process lock over manifest read-modify-write."""
    segdir.mkdir(parents=True, exist_ok=True)
    handle = open(segdir / _LOCK_NAME, "a+")
    try:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()


def merge_manifest(
    segdir: Path,
    add: Sequence[SegmentMeta] = (),
    drop: Sequence[str] = (),
) -> Manifest:
    """Merge segment additions/removals into the manifest under the lock.

    Concurrent writers each call this with only *their* new segments; the
    read-modify-write under :func:`manifest_lock` preserves everyone
    else's entries.  Returns the manifest as committed.
    """
    dropped = set(drop)
    with manifest_lock(segdir):
        manifest = load_manifest(segdir)
        kept = [meta for meta in manifest.segments if meta.name not in dropped]
        existing = {meta.name for meta in kept}
        for meta in add:
            if meta.name not in existing:
                kept.append(meta)
                existing.add(meta.name)
        merged = Manifest(spec_version=manifest.spec_version, segments=kept)
        commit_manifest(segdir, merged)
    return merged
