"""Declarative simulation-point specifications.

A :class:`RunSpec` fully determines one (workload × system × directory
organization) simulation point: everything :func:`repro.engine.execute.
execute_spec` needs to rebuild the :class:`~repro.coherence.system.TiledCMP`
and replay the trace lives in the spec, so a point simulated in a worker
process is bit-identical to the same point simulated in-process.  Specs are
frozen, hashable and JSON-round-trippable, and :meth:`RunSpec.key` derives a
stable content hash that the on-disk :class:`~repro.engine.store.ResultStore`
uses as its address.

:class:`RunGrid` is the declarative sweep layer: a grid is an ordered,
duplicate-free collection of specs, built either from an explicit iterable or
as the cartesian product of per-field axes (:meth:`RunGrid.product`).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field, fields
from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SPEC_VERSION",
    "DEFAULT_SCALE",
    "DEFAULT_MEASURE_ACCESSES",
    "ORGANIZATIONS",
    "HASH_FAMILIES",
    "RunSpec",
    "RunGrid",
]

#: Version salt mixed into every spec key.  Bump whenever the simulator's
#: semantics change so that previously cached results are not reused.
#: v2: trace/mix fields (the trace subsystem).
#: v3: timeline sidecars (records predating them have no stored timeline
#: to serve, so re-keying keeps ``get`` semantics uniform).
SPEC_VERSION = 3

#: Default cache-capacity scale factor for experiments (16x smaller caches).
DEFAULT_SCALE = 16

#: Default measurement-window length (accesses) for experiments.
DEFAULT_MEASURE_ACCESSES = 40_000

#: Directory organizations the engine knows how to build.
ORGANIZATIONS = ("cuckoo", "sparse", "skewed")

#: Hash-family overrides for Cuckoo directories (``None`` keeps the default).
HASH_FAMILIES = ("skewing", "strong")


@dataclass(frozen=True)
class RunSpec:
    """One simulation point, expressed as plain JSON-serializable values.

    ``workload`` is intentionally *not* validated against the Table 2 suite
    here: validation happens at execution time so that a bad point in a grid
    surfaces as an isolated :class:`~repro.engine.results.RunFailure` instead
    of aborting grid construction.

    ``trace`` and ``mix`` (mutually exclusive) route the point through the
    trace subsystem instead of live suite generation:

    * ``trace`` names a recorded trace file
      (:class:`~repro.traces.replay.TraceReplayWorkload` replays it; the
      file's header must agree with ``workload``/``seed``/``num_cores``);
    * ``mix`` is a multi-programmed mix spec such as ``"8xApache+8xocean"``
      (:func:`repro.traces.mix.parse_mix`); component core counts must sum
      to ``num_cores``.  By convention ``workload`` carries the same string
      for labelling.

    ``timeline_interval`` turns on interval-sampled counter timelines
    (:mod:`repro.obs.timeline`) at that cadence.  It is **excluded from
    equality and from the content hash**: sampling happens only at
    sub-slice boundaries where the simulation is bit-identical with or
    without it, so the same point with and without a timeline is the same
    result — a cached record can satisfy either request (modulo a stored
    timeline sidecar; see :meth:`~repro.engine.store.ResultStore.get`).

    ``trace_fingerprint`` pins the *contents* of the recording(s) a
    trace/mix point consumes (the trace header fingerprint, or the
    combined :meth:`~repro.traces.mix.MixWorkload.trace_fingerprint` of a
    mix's ``@file`` components).  It is part of the content hash and is
    validated at execution, so re-recording a file at the same path
    changes the key instead of silently serving a stale cached result.
    The CLI populates it automatically; specs built by hand may leave it
    ``None`` to key on the path alone.
    """

    workload: str
    tracked_level: str = "L1"
    organization: str = "cuckoo"
    ways: int = 4
    provisioning: float = 1.0
    num_cores: int = 16
    scale: int = DEFAULT_SCALE
    seed: int = 0
    measure_accesses: int = DEFAULT_MEASURE_ACCESSES
    warmup_accesses: Optional[int] = None
    occupancy_sample_interval: int = 2_000
    hash_family: Optional[str] = None
    trace: Optional[str] = None
    mix: Optional[str] = None
    trace_fingerprint: Optional[str] = None
    timeline_interval: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Accept CacheLevel enum members and normalise numeric types so that
        # equal points always hash to the same key (1 vs 1.0, "L1" vs L1).
        level = getattr(self.tracked_level, "value", self.tracked_level)
        object.__setattr__(self, "tracked_level", str(level))
        object.__setattr__(self, "provisioning", float(self.provisioning))
        for name in ("ways", "num_cores", "scale", "seed", "measure_accesses",
                     "warmup_accesses", "occupancy_sample_interval",
                     "timeline_interval"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(f"{name} must be an integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        if self.tracked_level not in ("L1", "L2"):
            raise ValueError(f"tracked_level must be 'L1' or 'L2', got {self.tracked_level!r}")
        if self.organization not in ORGANIZATIONS:
            raise ValueError(
                f"organization must be one of {ORGANIZATIONS}, got {self.organization!r}"
            )
        if self.hash_family is not None:
            if self.organization != "cuckoo":
                raise ValueError("hash_family overrides only apply to cuckoo directories")
            if self.hash_family not in HASH_FAMILIES:
                raise ValueError(
                    f"hash_family must be one of {HASH_FAMILIES}, got {self.hash_family!r}"
                )
        if self.ways <= 0:
            raise ValueError("ways must be positive")
        if self.provisioning <= 0:
            raise ValueError("provisioning must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.measure_accesses <= 0:
            raise ValueError("measure_accesses must be positive")
        if self.warmup_accesses is not None and self.warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")
        if self.occupancy_sample_interval <= 0:
            raise ValueError("occupancy_sample_interval must be positive")
        if self.timeline_interval is not None and self.timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive")
        if self.trace is not None and self.mix is not None:
            raise ValueError("trace and mix are mutually exclusive")
        if self.trace_fingerprint is not None and self.trace is None and self.mix is None:
            raise ValueError("trace_fingerprint requires a trace or mix field")
        if self.mix is not None:
            for part in self.mix.split("+"):
                if not re.match(r"^\d+x\S+$", part.strip()):
                    raise ValueError(
                        f"bad mix component {part.strip()!r} in {self.mix!r} "
                        f"(expected '<cores>x<workload>', e.g. '8xApache+8xocean')"
                    )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(**data)

    def key(self) -> str:
        """Stable content hash of this spec (the result-store address).

        The key covers every result-determining field plus
        :data:`SPEC_VERSION`, serialized as canonical JSON, so any such
        field change — and any simulator-semantics bump — produces a
        different key.  ``timeline_interval`` is excluded: it cannot
        change the simulated result (observability only), so the same
        point with and without a timeline shares one store address.
        """
        content = self.to_dict()
        content.pop("timeline_interval", None)
        payload = json.dumps(
            {"spec_version": SPEC_VERSION, **content},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable description (progress reporting, CLI)."""
        family = f", {self.hash_family}" if self.hash_family else ""
        source = ""
        if self.trace is not None:
            source = " [trace]"
        elif self.mix is not None:
            source = " [mix]"
        return (
            f"{self.workload}/{self.tracked_level} "
            f"{self.organization} {self.ways}w x{self.provisioning:g}{family} "
            f"(scale={self.scale}, seed={self.seed}){source}"
        )


class RunGrid:
    """An ordered, duplicate-free collection of :class:`RunSpec` points."""

    def __init__(self, specs: Iterable[RunSpec] = ()) -> None:
        self._specs: List[RunSpec] = []
        self._keys: Dict[str, int] = {}
        for spec in specs:
            self.add(spec)

    # -- construction --------------------------------------------------------
    def add(self, spec: RunSpec) -> "RunGrid":
        """Append ``spec`` unless an identical point is already present."""
        if not isinstance(spec, RunSpec):
            raise TypeError(f"RunGrid holds RunSpec instances, got {type(spec).__name__}")
        key = spec.key()
        if key not in self._keys:
            self._keys[key] = len(self._specs)
            self._specs.append(spec)
        return self

    @classmethod
    def product(cls, **axes: object) -> "RunGrid":
        """Cartesian product over per-field axes.

        Every keyword must name a :class:`RunSpec` field.  A list/tuple value
        is an axis to sweep; a scalar (including strings) is held fixed::

            RunGrid.product(workload=["Oracle", "ocean"],
                            tracked_level=["L1", "L2"],
                            ways=4, provisioning=2.0)

        Axes expand in field-declaration order, so the resulting spec order
        is deterministic.
        """
        field_names = [f.name for f in fields(RunSpec)]
        unknown = set(axes) - set(field_names)
        if unknown:
            raise TypeError(f"unknown RunSpec fields: {sorted(unknown)}")

        def as_axis(value: object) -> Sequence[object]:
            if isinstance(value, (list, tuple)):
                if not value:
                    raise ValueError("empty axis in RunGrid.product")
                return value
            return (value,)

        names = [name for name in field_names if name in axes]
        axis_values = [as_axis(axes[name]) for name in names]
        grid = cls()
        for combination in product(*axis_values):
            grid.add(RunSpec(**dict(zip(names, combination))))
        return grid

    def __add__(self, other: "RunGrid") -> "RunGrid":
        merged = RunGrid(self._specs)
        for spec in other:
            merged.add(spec)
        return merged

    # -- access --------------------------------------------------------------
    @property
    def specs(self) -> Tuple[RunSpec, ...]:
        return tuple(self._specs)

    def keys(self) -> List[str]:
        return [spec.key() for spec in self._specs]

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.key() in self._keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunGrid({len(self._specs)} specs)"
