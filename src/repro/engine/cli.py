"""Unified command line for the experiment engine.

Installed as the ``repro-run`` console script and runnable as
``python -m repro.engine``.  Eight subcommands:

``list``
    The available experiments and whether they are simulation-based.
``run``
    Execute one or more figure experiments (or ``all``) through the
    engine: points are sharded across workers and cached results are
    reused, so a second invocation of the same experiment simulates
    nothing.
``sweep``
    An ad-hoc cartesian sweep over workloads, configurations, directory
    organizations, ways, provisioning factors and seeds.
``trace``
    The trace subsystem: ``record`` a workload's stream to a compact
    ``.npz`` trace file, show a recording's ``info``, or ``replay`` a
    recording through the engine (optionally with SMARTS-style systematic
    sampling).
``mix``
    Run multi-programmed mix scenarios ("8xApache+8xocean") through the
    engine, sweeping configurations and directory organizations.
``report``
    Render any experiment from *cached* results — nothing is simulated —
    as an ASCII table, CSV or JSON, optionally scored against the
    digitized paper curves (``--reference``); or dump/aggregate the whole
    store (``--all``).
``compare``
    Diff two result stores or two ``BENCH_*.json`` records metric-by-
    metric with direction-aware thresholds; ``--fail-on-regression``
    makes regressions exit non-zero for CI gating.
``cache``
    Inspect (``show``/``stats``), compact or clear the content-addressed
    result store, or translate it to/from plain last-wins JSONL
    (``export``/``import``) for migration and interchange.

Examples
--------
::

    repro-run list
    repro-run run fig08 --workers 8 --scale 32 --measure-accesses 12000
    repro-run run all --quiet
    repro-run sweep --workloads Oracle,ocean --organizations cuckoo,sparse \
        --ways 4 --provisionings 0.5,1.0,2.0 --scale 64
    repro-run sweep --workloads Oracle --scale 64 --metrics-out metrics.json \
        --log-level info --log-json
    repro-run trace record Oracle --out traces/oracle.npz --scale 16
    repro-run trace info traces/oracle.npz --verify
    repro-run trace replay traces/oracle.npz
    repro-run trace replay traces/oracle.npz --sample-measure 1000 --sample-skip 9000
    repro-run mix 8xApache+8xocean 8xOracle+8xQry17 --scale 32
    repro-run report fig08 --store /tmp/results.jsonl
    repro-run report fig10 --reference
    repro-run run fig10 --timeline-interval 1000
    repro-run report fig10 --timeline --channel occupancy,forced_invalidations
    repro-run report mix --format csv --out mix.csv
    repro-run report --all --group-by workload,organization
    repro-run compare baseline.jsonl candidate.jsonl --fail-on-regression
    repro-run compare BENCH_hot_path.json /tmp/BENCH_hot_path.json --threshold 0.2
    repro-run cache
    repro-run cache stats
    repro-run cache compact
    repro-run cache export backup.jsonl
    repro-run cache import backup.jsonl
    repro-run cache clear
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.engine.runner import ParallelRunner, default_workers
from repro.engine.spec import (
    DEFAULT_MEASURE_ACCESSES,
    DEFAULT_SCALE,
    ORGANIZATIONS,
    RunGrid,
    RunSpec,
)
from repro.engine.store import ResultStore, default_store_path

__all__ = ["main", "build_parser"]


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _csv_int(value: str) -> List[int]:
    return [int(item) for item in _csv(value)]


def _csv_float(value: str) -> List[float]:
    return [float(item) for item in _csv(value)]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("engine options")
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_ENGINE_WORKERS or CPU count)",
    )
    group.add_argument(
        "--serial",
        action="store_true",
        help="force in-process execution (same as --workers 1)",
    )
    group.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result-store path (default: $REPRO_RESULT_STORE or "
        "~/.cache/repro-cuckoo/results.jsonl)",
    )
    group.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the result store (always simulate)",
    )
    group.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-point progress"
    )
    group.add_argument(
        "--timeline-interval",
        type=int,
        default=None,
        metavar="N",
        help="collect an interval-sampled counter timeline every N measured "
        "accesses per point, stored beside the result store; render with "
        "'repro-run report <experiment> --timeline'",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable telemetry and write a metrics/phase-timing snapshot "
        "to FILE after the run (JSON; see DESIGN.md 'Observability')",
    )
    group.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable structured run logs on stderr at this level",
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="emit log lines as JSON objects (implies --log-level info)",
    )


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("simulation options")
    group.add_argument(
        "--workloads",
        type=_csv,
        default=None,
        metavar="A,B,...",
        help="Table 2 workload subset (default: the full suite)",
    )
    group.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"cache-capacity scale factor (default {DEFAULT_SCALE}; 1 = full size)",
    )
    group.add_argument(
        "--measure-accesses",
        type=int,
        default=None,
        help=f"measured accesses per point (default {DEFAULT_MEASURE_ACCESSES})",
    )
    group.add_argument("--seed", type=int, default=None, help="trace seed (default 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Parallel, cached execution of the Cuckoo Directory experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser(
        "run", help="run figure experiments through the engine"
    )
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment names (see 'repro-run list') or 'all'",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="instead of running the experiment, wrap one representative "
        "simulation point in cProfile and print the top-20 entries "
        "(analytical experiments profile their full run)",
    )
    run_parser.add_argument(
        "--profile-sort",
        choices=("cumtime", "tottime"),
        default="cumtime",
        help="sort order of the printed profile: cumulative time (default) "
        "or internal time (hot-loop hunting)",
    )
    run_parser.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="also dump the raw pstats data to FILE so before/after "
        "profiles can be diffed with pstats.Stats (single experiment only)",
    )
    _add_sweep_options(run_parser)
    _add_engine_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an ad-hoc cartesian sweep of simulation points"
    )
    sweep_parser.add_argument(
        "--tracked-levels",
        type=_csv,
        default=["L1", "L2"],
        metavar="L1,L2",
        help="system configurations to sweep (default both)",
    )
    sweep_parser.add_argument(
        "--organizations",
        type=_csv,
        default=["cuckoo"],
        metavar=",".join(ORGANIZATIONS),
        help="directory organizations to sweep (default cuckoo)",
    )
    sweep_parser.add_argument(
        "--ways", type=_csv_int, default=[4], metavar="N,...", help="associativities"
    )
    sweep_parser.add_argument(
        "--provisionings",
        type=_csv_float,
        default=[1.0],
        metavar="F,...",
        help="provisioning factors",
    )
    sweep_parser.add_argument(
        "--seeds", type=_csv_int, default=[0], metavar="N,...", help="trace seeds"
    )
    _add_sweep_options(sweep_parser)
    _add_engine_options(sweep_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="record, inspect and replay workload traces"
    )
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)

    record_parser = trace_subparsers.add_parser(
        "record", help="record a workload's access stream to a trace file"
    )
    record_parser.add_argument("workload", help="Table 2 workload name")
    record_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output trace path (default traces/<workload>-c<cores>-s<scale>-seed<seed>.npz)",
    )
    record_parser.add_argument(
        "--accesses", type=int, default=None,
        help="accesses to record (default: recommended warm-up + --measure-accesses)",
    )
    record_parser.add_argument(
        "--tracked-level", default="L1", choices=("L1", "L2"),
        help="system configuration the default recording length is sized for",
    )
    record_parser.add_argument("--num-cores", type=int, default=16)
    record_parser.add_argument(
        "--scale", type=int, default=None,
        help=f"cache-capacity scale factor (default {DEFAULT_SCALE})",
    )
    record_parser.add_argument(
        "--measure-accesses", type=int, default=None,
        help=f"measurement window the recording must cover (default {DEFAULT_MEASURE_ACCESSES})",
    )
    record_parser.add_argument("--seed", type=int, default=0)

    info_parser = trace_subparsers.add_parser(
        "info", help="show a trace file's header"
    )
    info_parser.add_argument("path", help="trace file")
    info_parser.add_argument(
        "--verify", action="store_true",
        help="recompute the content fingerprint over the whole file",
    )

    replay_parser = trace_subparsers.add_parser(
        "replay", help="replay a recorded trace through the engine"
    )
    replay_parser.add_argument("path", help="trace file")
    replay_parser.add_argument(
        "--tracked-level", default="L1", choices=("L1", "L2"),
        help="system configuration to replay against (default L1)",
    )
    replay_parser.add_argument(
        "--organization", default="cuckoo", choices=ORGANIZATIONS
    )
    replay_parser.add_argument("--ways", type=int, default=4)
    replay_parser.add_argument("--provisioning", type=float, default=1.0)
    replay_parser.add_argument(
        "--measure-accesses", type=int, default=None,
        help="measured accesses (default: all the trace holds beyond warm-up)",
    )
    replay_parser.add_argument(
        "--sample-measure", type=int, default=None, metavar="N",
        help="SMARTS sampling: accesses measured per window (bypasses the store)",
    )
    replay_parser.add_argument(
        "--sample-skip", type=int, default=0, metavar="N",
        help="SMARTS sampling: unmeasured warming accesses before each window",
    )
    replay_parser.add_argument(
        "--sample-windows", type=int, default=None, metavar="K",
        help="SMARTS sampling: maximum measured windows (default: trace length)",
    )
    _add_engine_options(replay_parser)

    mix_parser = subparsers.add_parser(
        "mix", help="run multi-programmed mix scenarios through the engine"
    )
    mix_parser.add_argument(
        "mixes", nargs="+", metavar="MIX",
        help="mix specs like 8xApache+8xocean (cores x workload, '+'-separated)",
    )
    mix_parser.add_argument(
        "--tracked-levels", type=_csv, default=["L1", "L2"], metavar="L1,L2"
    )
    mix_parser.add_argument(
        "--organizations", type=_csv, default=["cuckoo"],
        metavar=",".join(ORGANIZATIONS),
    )
    mix_parser.add_argument("--ways", type=_csv_int, default=[4], metavar="N,...")
    mix_parser.add_argument(
        "--provisionings", type=_csv_float, default=[1.0], metavar="F,..."
    )
    mix_parser.add_argument("--seeds", type=_csv_int, default=[0], metavar="N,...")
    mix_parser.add_argument("--scale", type=int, default=None)
    mix_parser.add_argument("--measure-accesses", type=int, default=None)
    _add_engine_options(mix_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="render an experiment (or the whole store) from cached results",
    )
    report_parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        metavar="EXPERIMENT",
        help="experiment name (see 'repro-run list'); omit with --all",
    )
    report_parser.add_argument(
        "--all",
        action="store_true",
        help="report over every record in the store instead of one experiment",
    )
    report_parser.add_argument(
        "--group-by",
        type=_csv,
        default=None,
        metavar="FIELD,...",
        help="with --all: aggregate records over these spec fields "
        "(mean/geomean of the headline metrics per group)",
    )
    report_parser.add_argument(
        "--format",
        dest="fmt",
        default="ascii",
        choices=("ascii", "csv", "json"),
        help="output format (default ascii)",
    )
    report_parser.add_argument(
        "--reference",
        action="store_true",
        help="append the paper-reference error metrics (digitized figures)",
    )
    report_parser.add_argument(
        "--timeline",
        action="store_true",
        help="report the experiment's stored counter timelines (simulate "
        "them first with --timeline-interval) instead of the figure table",
    )
    report_parser.add_argument(
        "--channel",
        type=_csv,
        default=None,
        metavar="NAME,...",
        help="with --timeline: restrict the report to these channels",
    )
    report_parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the report to a file"
    )
    report_parser.add_argument("--store", default=None, metavar="PATH")
    _add_sweep_options(report_parser)

    compare_parser = subparsers.add_parser(
        "compare",
        help="diff two result stores or two BENCH_*.json records",
    )
    compare_parser.add_argument("baseline", help="baseline store / benchmark file")
    compare_parser.add_argument("candidate", help="candidate store / benchmark file")
    compare_parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="relative change counting as a regression/improvement (default 0.05)",
    )
    compare_parser.add_argument(
        "--metrics",
        type=_csv,
        default=None,
        metavar="M,...",
        help="restrict the comparison to these metrics (store fields or "
        "benchmark leaf-name substrings)",
    )
    compare_parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any gated metric regressed (CI gating)",
    )
    compare_parser.add_argument(
        "--show-all",
        action="store_true",
        help="list every compared entry, not only the changed ones",
    )
    compare_parser.add_argument(
        "--format",
        dest="fmt",
        default="ascii",
        choices=("ascii", "json"),
        help="output format (default ascii)",
    )
    compare_parser.add_argument(
        "--out", default=None, metavar="PATH", help="write the comparison to a file"
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, compact, clear or export/import the result store"
    )
    cache_parser.add_argument(
        "action",
        nargs="?",
        default="show",
        choices=("show", "stats", "clear", "compact", "export", "import"),
        help="what to do with the store (default: show); 'stats' prints "
        "storage-engine details, 'export'/'import' translate to/from plain "
        "last-wins JSONL",
    )
    cache_parser.add_argument(
        "file",
        nargs="?",
        default=None,
        metavar="FILE",
        help="JSONL destination for 'export' / source for 'import'",
    )
    cache_parser.add_argument("--store", default=None, metavar="PATH")
    cache_parser.add_argument(
        "--clear", action="store_true", help="same as the 'clear' action"
    )
    cache_parser.add_argument(
        "--compact", action="store_true", help="same as the 'compact' action"
    )
    return parser


def _setup_telemetry(args: argparse.Namespace) -> None:
    """Apply the engine telemetry flags before any simulation starts.

    Metrics/tracing are enabled whenever someone will look at them — a
    ``--metrics-out`` dump or the (non ``--quiet``) final phase breakdown.
    The overhead gate (``benchmarks/bench_obs_overhead.py``) keeps the
    enabled path within 2% of disabled, which is what makes on-by-default
    CLI telemetry acceptable.
    """
    from repro import obs

    level = getattr(args, "log_level", None)
    json_lines = bool(getattr(args, "log_json", False))
    if level or json_lines:
        obs.setup_logging(level=level or "info", json_lines=json_lines)
    if getattr(args, "metrics_out", None) or not getattr(args, "quiet", False):
        obs.enable()


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    from repro.obs.progress import ProgressRenderer, SweepMonitor

    store = None
    if not args.no_store:
        store = ResultStore(args.store) if args.store else ResultStore()
    workers = 1 if args.serial else args.workers

    # Progress flows through a SweepMonitor and a throttled renderer: one
    # rewritten line on a TTY, sparse plain lines otherwise — never one
    # unthrottled stderr line per point.  A --metrics-out dump wants the
    # sweep summary even under --quiet, so the monitor outlives the
    # renderer's visibility rules.
    monitor = None
    renderer = None
    progress = None
    tick = None
    if not args.quiet or getattr(args, "metrics_out", None):
        monitor = SweepMonitor()
    if not args.quiet:
        renderer = ProgressRenderer()

        def tick() -> None:
            renderer.update(monitor)

        def progress(event: str, done: int, total: int, spec: RunSpec) -> None:
            renderer.update(monitor)

    runner = ParallelRunner(
        workers=workers,
        store=store,
        progress=progress,
        monitor=monitor,
        tick=tick,
        timeline_interval=getattr(args, "timeline_interval", None),
    )
    runner.cli_renderer = renderer
    return runner


def _finish_telemetry(
    args: argparse.Namespace, runner: Optional[ParallelRunner] = None
) -> None:
    """End-of-command telemetry: close the progress line, print the phase
    breakdown, write the ``--metrics-out`` snapshot."""
    from repro import obs

    if runner is not None:
        renderer = getattr(runner, "cli_renderer", None)
        monitor = runner.monitor
        if renderer is not None and monitor is not None and monitor.total:
            renderer.finish(monitor)
    if not getattr(args, "quiet", False):
        totals = obs.TRACER.totals()
        if totals:
            print(obs.render_phase_breakdown(totals), file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        meta = {"command": args.command}
        if runner is not None and runner.monitor is not None:
            meta["sweep"] = runner.monitor.snapshot()
        path = obs.export.write_snapshot(metrics_out, meta=meta)
        print(f"metrics written to {path}", file=sys.stderr)


def _unknown_workloads_message(names: Optional[Sequence[str]]) -> Optional[str]:
    """Friendly error for unknown Table 2 workload names (None when fine)."""
    if not names:
        return None
    from repro.workloads.suite import WORKLOAD_NAMES

    unknown = [name for name in names if name not in WORKLOAD_NAMES]
    if not unknown:
        return None
    return (
        f"unknown workload(s): {', '.join(unknown)} "
        f"(expected: {', '.join(WORKLOAD_NAMES)})"
    )


def _cmd_list() -> int:
    from repro.engine.registry import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        kind = "simulation" if experiment.simulated else "analytical"
        print(f"{name:<{width}}  [{kind}]  {experiment.title}")
    return 0


def _cmd_profile(names: List[str], args: argparse.Namespace) -> int:
    """Profile one representative point per named experiment (``--profile``)."""
    import cProfile
    import pstats

    from repro.engine.execute import execute_spec
    from repro.engine.registry import EXPERIMENTS, run_experiment

    profile_out = getattr(args, "profile_out", None)
    if profile_out and len(names) > 1:
        print(
            "--profile-out expects exactly one experiment (the dump holds a "
            "single profile)",
            file=sys.stderr,
        )
        return 2
    sort_key = getattr(args, "profile_sort", "cumtime") or "cumtime"

    for name in names:
        experiment = EXPERIMENTS[name]
        if experiment.grid is not None:
            grid_kwargs = {
                option: value
                for option, value in (
                    ("workloads", args.workloads),
                    ("scale", args.scale),
                    ("measure_accesses", args.measure_accesses),
                    ("seed", args.seed),
                )
                if option in experiment.options and value is not None
            }
            spec = experiment.grid(**grid_kwargs).specs[0]
            label = spec.label()

            def target(spec=spec):
                execute_spec(spec)

        else:
            label = "analytical, full run"

            def target(name=name):
                run_experiment(name)

        print(f"== profiling {name}: {label}", file=sys.stderr)
        profiler = cProfile.Profile()
        profiler.enable()
        target()
        profiler.disable()
        pstats.Stats(profiler).sort_stats(sort_key).print_stats(20)
        if profile_out:
            profiler.dump_stats(profile_out)
            print(f"pstats dump written to {profile_out}", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.engine.registry import EXPERIMENTS, run_experiment

    names = list(args.experiments)
    if len(names) == 1 and names[0] in ("all", "suite"):
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(expected: {', '.join(EXPERIMENTS)} or 'all')",
            file=sys.stderr,
        )
        return 2
    workload_error = _unknown_workloads_message(args.workloads)
    if workload_error:
        print(workload_error, file=sys.stderr)
        return 2

    if args.profile:
        return _cmd_profile(names, args)

    _setup_telemetry(args)
    runner = _make_runner(args)
    failures = 0
    for name in names:
        experiment = EXPERIMENTS[name]
        print(f"== {experiment.title}", file=sys.stderr)
        try:
            _result, table = run_experiment(
                name,
                runner=runner,
                workloads=args.workloads,
                scale=args.scale,
                measure_accesses=args.measure_accesses,
                seed=args.seed,
            )
        except Exception as exc:
            failures += 1
            print(f"{name} failed: {exc}", file=sys.stderr)
            continue
        print(table)
        print()
    _finish_telemetry(args, runner)
    _print_engine_summary(runner)
    return 1 if failures else 0


def _sweep_table(specs: Sequence[RunSpec], report) -> str:
    from repro.analysis.tables import format_percentage, render_table

    headers = [
        "Workload", "Config", "Organization", "Ways", "Provisioning", "Seed",
        "Avg attempts", "Invalidation rate", "Occupancy (vs 1x)",
    ]
    rows = []
    for spec in specs:
        try:
            result = report.result_for(spec)
        except Exception as exc:
            rows.append(
                [spec.workload, spec.tracked_level, spec.organization, spec.ways,
                 f"{spec.provisioning:g}x", spec.seed, "failed", str(exc)[:40], "-"]
            )
            continue
        rows.append(
            [
                spec.workload,
                spec.tracked_level,
                spec.organization,
                spec.ways,
                f"{spec.provisioning:g}x",
                spec.seed,
                f"{result.average_insertion_attempts:.2f}",
                format_percentage(result.forced_invalidation_rate, digits=3),
                format_percentage(result.occupancy_vs_worst_case, digits=1),
            ]
        )
    return render_table(headers, rows, title="Ad-hoc sweep")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.workloads.suite import WORKLOAD_NAMES

    workload_error = _unknown_workloads_message(args.workloads)
    if workload_error:
        print(workload_error, file=sys.stderr)
        return 2
    workloads = args.workloads if args.workloads is not None else list(WORKLOAD_NAMES)
    try:
        grid = RunGrid.product(
            workload=workloads,
            tracked_level=args.tracked_levels,
            organization=args.organizations,
            ways=args.ways,
            provisioning=args.provisionings,
            seed=args.seeds,
            scale=args.scale if args.scale is not None else DEFAULT_SCALE,
            measure_accesses=(
                args.measure_accesses
                if args.measure_accesses is not None
                else DEFAULT_MEASURE_ACCESSES
            ),
        )
    except (TypeError, ValueError) as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return 2
    _setup_telemetry(args)
    runner = _make_runner(args)
    report = runner.run(grid)
    _finish_telemetry(args, runner)
    print(_sweep_table(grid.specs, report))
    _print_engine_summary(runner, report)
    return 0 if report.ok else 1


def _print_engine_summary(runner: ParallelRunner, report=None) -> None:
    store = runner.store
    parts = []
    if report is not None:
        parts.append(report.summary())
    if store is not None:
        parts.append(
            f"store {store.path}: {len(store)} entries, "
            f"{store.hits} hits / {store.misses} misses this run"
        )
    if parts:
        print(f"engine: {'; '.join(parts)}", file=sys.stderr)


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.config import CacheLevel
    from repro.experiments.common import scaled_system
    from repro.traces import TraceRecorder, accesses_for_run
    from repro.workloads.suite import get_workload

    workload_error = _unknown_workloads_message([args.workload])
    if workload_error:
        print(workload_error, file=sys.stderr)
        return 2
    workload = get_workload(args.workload)
    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    system = scaled_system(
        CacheLevel(args.tracked_level), num_cores=args.num_cores, scale=scale
    )
    accesses = args.accesses
    if accesses is None:
        measure = (
            args.measure_accesses
            if args.measure_accesses is not None
            else DEFAULT_MEASURE_ACCESSES
        )
        accesses = accesses_for_run(workload, system, measure)
    out = args.out
    if out is None:
        out = (
            f"traces/{args.workload}-c{args.num_cores}-s{scale}-seed{args.seed}.npz"
        )
    header = TraceRecorder().record(
        workload, system, out, accesses, seed=args.seed, scale=scale
    )
    from pathlib import Path

    size = Path(out).stat().st_size
    print(f"recorded {out} ({size} bytes)")
    print(header.describe())
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.traces import TraceFile

    try:
        trace = TraceFile(args.path)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    size = trace.path.stat().st_size
    print(f"path:         {trace.path} ({size} bytes)")
    print(trace.header.describe())
    print(f"memory-mapped: {'yes' if trace.mapped else 'no (compressed members)'}")
    if args.verify:
        if trace.verify():
            print("fingerprint:  OK")
        else:
            print("fingerprint:  MISMATCH — file corrupt or tampered", file=sys.stderr)
            return 1
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.traces import TraceFile

    try:
        trace = TraceFile(args.path)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    header = trace.header
    _setup_telemetry(args)

    if args.sample_measure is not None:
        if args.measure_accesses is not None:
            print(
                "--measure-accesses does not apply to sampled replays; "
                "bound the run with --sample-windows instead",
                file=sys.stderr,
            )
            return 2
        return _replay_sampled(args, trace)
    if args.sample_skip or args.sample_windows is not None:
        print(
            "--sample-skip/--sample-windows need --sample-measure; "
            "refusing to run an unsampled replay instead",
            file=sys.stderr,
        )
        return 2

    from repro.config import CacheLevel
    from repro.experiments.common import scaled_system
    from repro.traces import TraceReplayWorkload

    # The recorded stream is scale-specific, so the replay system always
    # uses the recording's scale (scale-less API recordings get the default).
    scale = header.scale if header.scale is not None else DEFAULT_SCALE
    measure = args.measure_accesses
    if measure is None:
        system = scaled_system(
            CacheLevel(args.tracked_level), num_cores=header.num_cores, scale=scale
        )
        warmup = TraceReplayWorkload(trace).recommended_warmup(system)
        measure = header.num_accesses - warmup
        if measure <= 0:
            print(
                f"trace holds {header.num_accesses} accesses, all consumed by the "
                f"{warmup}-access warm-up; record a longer trace or pass "
                f"--measure-accesses",
                file=sys.stderr,
            )
            return 2
    spec = RunSpec(
        workload=header.workload,
        tracked_level=args.tracked_level,
        organization=args.organization,
        ways=args.ways,
        provisioning=args.provisioning,
        num_cores=header.num_cores,
        scale=scale,
        seed=header.seed,
        measure_accesses=measure,
        trace=str(trace.path),
        trace_fingerprint=header.fingerprint,
    )
    runner = _make_runner(args)
    report = runner.run([spec])
    _finish_telemetry(args, runner)
    print(_sweep_table([spec], report))
    _print_engine_summary(runner, report)
    return 0 if report.ok else 1


def _replay_sampled(args: argparse.Namespace, trace: "object") -> int:
    """``trace replay --sample-measure``: direct sampled run, no store."""
    from repro.analysis.tables import format_percentage, render_table
    from repro.config import CacheLevel
    from repro.engine.execute import directory_factory_for_spec
    from repro.experiments.common import scaled_system
    from repro.traces import SampledTrace, TraceReplayWorkload

    header = trace.header
    scale = header.scale if header.scale is not None else DEFAULT_SCALE
    system = scaled_system(
        CacheLevel(args.tracked_level), num_cores=header.num_cores, scale=scale
    )
    spec = RunSpec(
        workload=header.workload,
        tracked_level=args.tracked_level,
        organization=args.organization,
        ways=args.ways,
        provisioning=args.provisioning,
        num_cores=header.num_cores,
        scale=scale,
        seed=header.seed,
    )
    factory = directory_factory_for_spec(spec, system)
    sampled = SampledTrace(
        TraceReplayWorkload(trace),
        measure_window=args.sample_measure,
        skip_window=args.sample_skip,
        max_windows=args.sample_windows,
    ).run(
        system,
        factory,
        seed=header.seed,
        occupancy_sample_interval=spec.occupancy_sample_interval,
        timeline_interval=getattr(args, "timeline_interval", None),
    )
    result = sampled.result
    rows = [
        ["Windows measured", sampled.windows],
        ["Accesses measured", result.accesses],
        ["Sampled fraction", format_percentage(sampled.sampled_fraction, digits=1)],
        ["Avg insertion attempts", f"{result.average_insertion_attempts:.3f}"],
        ["Forced invalidation rate",
         format_percentage(result.forced_invalidation_rate, digits=3)],
        ["Avg occupancy (vs capacity)",
         format_percentage(result.average_occupancy, digits=1)],
        ["Cache hit rate", format_percentage(result.cache_hit_rate, digits=1)],
    ]
    print(
        render_table(
            ["Metric", "Value"], rows,
            title=f"Sampled replay of {header.workload} "
            f"({args.sample_measure} measure / {args.sample_skip} skip)",
        )
    )
    if result.timeline is not None and result.timeline.enabled:
        # Sampled replays bypass the store, so this is the only place the
        # window-cadence timeline surfaces: one sample per measured window.
        print()
        print("Counter timeline (one sample per measured window):")
        print(result.timeline.render())
    _finish_telemetry(args)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _cmd_trace_record(args)
    if args.trace_command == "info":
        return _cmd_trace_info(args)
    if args.trace_command == "replay":
        return _cmd_trace_replay(args)
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


def _cmd_mix(args: argparse.Namespace) -> int:
    from repro.traces import parse_mix

    totals = {}
    fingerprints = {}
    for mix_spec in args.mixes:
        try:
            mix = parse_mix(mix_spec)
        except (ValueError, FileNotFoundError) as exc:
            print(f"invalid mix {mix_spec!r}: {exc}", file=sys.stderr)
            return 2
        totals[mix_spec] = mix.total_cores
        fingerprints[mix_spec] = mix.trace_fingerprint()
    try:
        grid = RunGrid(
            RunSpec(
                workload=mix_spec,
                mix=mix_spec,
                trace_fingerprint=fingerprints[mix_spec],
                num_cores=totals[mix_spec],
                tracked_level=level,
                organization=organization,
                ways=ways,
                provisioning=provisioning,
                seed=seed,
                scale=args.scale if args.scale is not None else DEFAULT_SCALE,
                measure_accesses=(
                    args.measure_accesses
                    if args.measure_accesses is not None
                    else DEFAULT_MEASURE_ACCESSES
                ),
            )
            for mix_spec in args.mixes
            for level in args.tracked_levels
            for organization in args.organizations
            for ways in args.ways
            for provisioning in args.provisionings
            for seed in args.seeds
        )
    except (TypeError, ValueError) as exc:
        print(f"invalid mix sweep: {exc}", file=sys.stderr)
        return 2
    _setup_telemetry(args)
    runner = _make_runner(args)
    report = runner.run(grid)
    _finish_telemetry(args, runner)
    print(_sweep_table(grid.specs, report))
    _print_engine_summary(runner, report)
    return 0 if report.ok else 1


def _deliver(text: str, out: Optional[str]) -> None:
    """Print a report, or write it to ``--out`` (noting where it went)."""
    if out is None:
        print(text)
        return
    from pathlib import Path

    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + ("\n" if not text.endswith("\n") else ""))
    print(f"wrote {path}", file=sys.stderr)


def _format_flat_cell(value: object) -> str:
    return f"{value:.4f}" if isinstance(value, float) else str(value)


def _report_store_path(args: argparse.Namespace) -> str:
    return args.store if args.store else str(default_store_path())


def _cmd_report_all(args: argparse.Namespace) -> int:
    """``repro-run report --all``: the whole store, flat or aggregated."""
    from pathlib import Path

    from repro.analysis.frame import Column, SweepFrame
    from repro.engine.segment import MANIFEST_NAME
    from repro.engine.store import iter_store_records, segments_dir

    store_path = _report_store_path(args)
    if (
        not Path(store_path).exists()
        and not (segments_dir(Path(store_path)) / MANIFEST_NAME).is_file()
    ):
        print(f"no result store at {store_path}", file=sys.stderr)
        return 2
    if args.group_by:
        frame = SweepFrame.aggregate_columns(
            store_path,
            group_by=args.group_by,
            metrics={
                "points": ("workload", "count"),
                "hit_rate": ("cache_hit_rate", "mean"),
                "occupancy": ("occupancy_vs_worst_case", "mean"),
                "avg_attempts": ("average_insertion_attempts", "mean"),
                "geomean_attempts": ("average_insertion_attempts", "geomean"),
                "invalidation_rate": ("forced_invalidation_rate", "mean"),
                # Simulation cost per group (results recorded before the
                # per-spec wall-time existed simply don't contribute).
                "cost_seconds": ("elapsed_seconds", "sum"),
                "secs_per_point": ("elapsed_seconds", "mean"),
            },
        )
        title = f"Store aggregate by {', '.join(args.group_by)} ({store_path})"
    else:
        frame = SweepFrame.from_records(
            (payload for _key, payload in iter_store_records(store_path)),
            fields=(
                "workload", "tracked_level", "organization", "ways",
                "provisioning", "seed", "scale", "measure_accesses",
                "cache_hit_rate", "occupancy_vs_worst_case",
                "average_insertion_attempts", "forced_invalidation_rate",
                "elapsed_seconds", "worker",
            ),
        )
        title = f"Store contents ({store_path})"
    if args.fmt == "csv":
        _deliver(frame.to_csv(), args.out)
    elif args.fmt == "json":
        _deliver(frame.to_json(), args.out)
    else:
        columns = [
            Column(field, field, _format_flat_cell) for field in frame.fields()
        ]
        _deliver(frame.render(columns, title=title), args.out)
    if args.reference:
        print(
            "--reference applies to figure experiments, not --all; ignored",
            file=sys.stderr,
        )
    return 0


def _cmd_report_timeline(args: argparse.Namespace, name: str) -> int:
    """``repro-run report <experiment> --timeline``: stored counter timelines.

    Never simulates: timelines come from the ``.timelines/`` sidecars the
    result store wrote when the experiment ran with ``--timeline-interval``.
    One stored point renders as its full sparkline table; several render as
    the mean/p95 envelope over normalized run progress.
    """
    from repro.analysis.timeline_report import (
        render_timelines,
        timelines_to_csv,
        timelines_to_json,
    )
    from repro.engine.registry import EXPERIMENTS
    from repro.obs.timeline import unknown_channels_message

    channel_error = unknown_channels_message(args.channel)
    if channel_error:
        print(channel_error, file=sys.stderr)
        return 2
    experiment = EXPERIMENTS[name]
    if experiment.grid is None:
        print(
            f"{name} is analytical — it has no simulation points, so no "
            f"timelines",
            file=sys.stderr,
        )
        return 2
    grid_kwargs = {
        option: value
        for option, value in (
            ("workloads", args.workloads),
            ("scale", args.scale),
            ("measure_accesses", args.measure_accesses),
            ("seed", args.seed),
        )
        if option in experiment.options and value is not None
    }
    grid = experiment.grid(**grid_kwargs)
    store = ResultStore(_report_store_path(args))
    labeled = []
    for spec in grid:
        timeline = store.get_timeline(spec.key())
        if timeline is not None:
            labeled.append((spec.label(), timeline))
    if not labeled:
        print(
            f"no stored timelines for {name} in {store.path}; simulate them "
            f"first with 'repro-run run {name} --timeline-interval N'",
            file=sys.stderr,
        )
        return 1
    missing = len(grid) - len(labeled)
    if missing:
        print(
            f"note: {missing} of {len(grid)} points have no stored timeline",
            file=sys.stderr,
        )
    if args.fmt == "csv":
        _deliver(timelines_to_csv(labeled, channels=args.channel), args.out)
    elif args.fmt == "json":
        _deliver(timelines_to_json(labeled, channels=args.channel), args.out)
    else:
        _deliver(
            render_timelines(
                labeled,
                channels=args.channel,
                title=f"{experiment.title} — counter timelines",
            ),
            args.out,
        )
    if args.reference:
        print(
            "--reference applies to figure tables, not --timeline; ignored",
            file=sys.stderr,
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.report import (
        experiment_series,
        reference_scores,
        reference_summary,
        series_frame,
    )
    from repro.engine.registry import EXPERIMENTS, run_experiment
    from repro.engine.runner import EngineError, StoreOnlyRunner

    if args.all and args.experiment:
        print("give an experiment name or --all, not both", file=sys.stderr)
        return 2
    if args.channel and not args.timeline:
        print("--channel only applies with --timeline", file=sys.stderr)
        return 2
    if args.all:
        if args.timeline:
            print(
                "--timeline reports one experiment's stored timelines; "
                "name the experiment instead of --all",
                file=sys.stderr,
            )
            return 2
        return _cmd_report_all(args)
    if not args.experiment:
        print(
            "nothing to report: name an experiment (see 'repro-run list') "
            "or pass --all",
            file=sys.stderr,
        )
        return 2
    name = args.experiment
    if name not in EXPERIMENTS:
        print(
            f"unknown experiment {name!r} "
            f"(expected: {', '.join(EXPERIMENTS)})",
            file=sys.stderr,
        )
        return 2
    workload_error = _unknown_workloads_message(args.workloads)
    if workload_error:
        print(workload_error, file=sys.stderr)
        return 2
    if args.timeline:
        return _cmd_report_timeline(args, name)

    experiment = EXPERIMENTS[name]
    runner = None
    if experiment.simulated:
        # Reports never simulate: points must already be in the store.
        runner = StoreOnlyRunner(ResultStore(_report_store_path(args)))
    try:
        result, table = run_experiment(
            name,
            runner=runner,
            workloads=args.workloads,
            scale=args.scale,
            measure_accesses=args.measure_accesses,
            seed=args.seed,
        )
    except EngineError as exc:
        print(f"{name}: {exc}", file=sys.stderr)
        return 1

    if args.fmt == "csv":
        if args.reference:
            print(
                "--reference is not representable in the flat CSV; use "
                "--format ascii or json for the error metrics (ignored)",
                file=sys.stderr,
            )
        frame = series_frame(experiment_series(name, result))
        _deliver(frame.to_csv(fields=("series", "point", "value")), args.out)
    elif args.fmt == "json":
        payload = {
            "experiment": name,
            "title": experiment.title,
            "series": experiment_series(name, result),
        }
        if args.reference:
            scores = reference_scores(name, result)
            if scores is not None:
                payload["reference"] = {
                    label: vars(score).copy() for label, score in scores.items()
                }
        _deliver(json_module.dumps(payload, indent=2), args.out)
    else:
        sections = [table]
        if args.reference:
            summary = reference_summary(name, result)
            if summary is None:
                print(f"no digitized paper reference for {name}", file=sys.stderr)
            else:
                sections.append(summary)
        _deliver("\n\n".join(sections), args.out)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.report import compare_files

    try:
        report = compare_files(
            args.baseline,
            args.candidate,
            threshold=args.threshold,
            metrics=args.metrics,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.fmt == "json":
        _deliver(report.to_json(), args.out)
    else:
        _deliver(report.render(show_all=args.show_all), args.out)
    if args.fail_on_regression and not report.ok:
        print(
            f"FAIL: {len(report.regressions)} metric(s) regressed beyond "
            f"{report.threshold:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    flag_action = "clear" if args.clear else ("compact" if args.compact else None)
    if flag_action and args.action != "show" and flag_action != args.action:
        print(
            f"conflicting cache requests: action {args.action!r} vs --{flag_action}",
            file=sys.stderr,
        )
        return 2
    store = ResultStore(args.store) if args.store else ResultStore()
    action = flag_action or args.action
    if action == "clear":
        entries = len(store)
        store.clear()
        print(f"cleared {entries} cached results from {store.path}")
        return 0
    if action == "compact":
        report = store.compact()
        print(f"compacted {store.path}: {report}")
        return 0
    if action == "export":
        if not args.file:
            print("cache export needs a destination FILE", file=sys.stderr)
            return 2
        count = store.export_jsonl(args.file)
        print(f"exported {count} records from {store.path} to {args.file}")
        return 0
    if action == "import":
        if not args.file:
            print("cache import needs a source FILE", file=sys.stderr)
            return 2
        if not Path(args.file).exists():
            print(f"no such file: {args.file}", file=sys.stderr)
            return 2
        imported, dropped = store.import_jsonl(args.file)
        line = f"imported {imported} records from {args.file} into {store.path}"
        if dropped:
            line += f" ({dropped} malformed records dropped)"
        print(line)
        return 0
    if action == "stats":
        stats = store.stats()
        width = max(len(name) for name in stats)
        for name, value in stats.items():
            print(f"{name:<{width}}  {value}")
        return 0
    size = store.path.stat().st_size if store.path.exists() else 0
    print(f"store:   {store.path}")
    print(f"entries: {len(store)}")
    print(f"size:    {size} bytes")
    segments = store.segment_names()
    if segments:
        stats = store.stats()
        print(
            f"engine:  {len(segments)} sealed segments "
            f"({stats['segment_rows']} rows, {stats['segment_bytes']} bytes), "
            f"{stats['wal_records']} WAL-resident records"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "mix":
        return _cmd_mix(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
