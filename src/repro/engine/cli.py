"""Unified command line for the experiment engine.

Installed as the ``repro-run`` console script and runnable as
``python -m repro.engine``.  Four subcommands:

``list``
    The available experiments and whether they are simulation-based.
``run``
    Execute one or more figure experiments (or ``all``) through the
    engine: points are sharded across workers and cached results are
    reused, so a second invocation of the same experiment simulates
    nothing.
``sweep``
    An ad-hoc cartesian sweep over workloads, configurations, directory
    organizations, ways, provisioning factors and seeds.
``cache``
    Inspect, compact or clear the content-addressed result store.

Examples
--------
::

    repro-run list
    repro-run run fig08 --workers 8 --scale 32 --measure-accesses 12000
    repro-run run all --quiet
    repro-run sweep --workloads Oracle,ocean --organizations cuckoo,sparse \
        --ways 4 --provisionings 0.5,1.0,2.0 --scale 64
    repro-run cache
    repro-run cache --clear
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.engine.runner import ParallelRunner, default_workers
from repro.engine.spec import (
    DEFAULT_MEASURE_ACCESSES,
    DEFAULT_SCALE,
    ORGANIZATIONS,
    RunGrid,
    RunSpec,
)
from repro.engine.store import ResultStore, default_store_path

__all__ = ["main", "build_parser"]


def _csv(value: str) -> List[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _csv_int(value: str) -> List[int]:
    return [int(item) for item in _csv(value)]


def _csv_float(value: str) -> List[float]:
    return [float(item) for item in _csv(value)]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("engine options")
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_ENGINE_WORKERS or CPU count)",
    )
    group.add_argument(
        "--serial",
        action="store_true",
        help="force in-process execution (same as --workers 1)",
    )
    group.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result-store path (default: $REPRO_RESULT_STORE or "
        "~/.cache/repro-cuckoo/results.jsonl)",
    )
    group.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the result store (always simulate)",
    )
    group.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-point progress"
    )


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("simulation options")
    group.add_argument(
        "--workloads",
        type=_csv,
        default=None,
        metavar="A,B,...",
        help="Table 2 workload subset (default: the full suite)",
    )
    group.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"cache-capacity scale factor (default {DEFAULT_SCALE}; 1 = full size)",
    )
    group.add_argument(
        "--measure-accesses",
        type=int,
        default=None,
        help=f"measured accesses per point (default {DEFAULT_MEASURE_ACCESSES})",
    )
    group.add_argument("--seed", type=int, default=None, help="trace seed (default 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Parallel, cached execution of the Cuckoo Directory experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser(
        "run", help="run figure experiments through the engine"
    )
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment names (see 'repro-run list') or 'all'",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="instead of running the experiment, wrap one representative "
        "simulation point in cProfile and print the top-20 entries by "
        "cumulative time (analytical experiments profile their full run)",
    )
    _add_sweep_options(run_parser)
    _add_engine_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run an ad-hoc cartesian sweep of simulation points"
    )
    sweep_parser.add_argument(
        "--tracked-levels",
        type=_csv,
        default=["L1", "L2"],
        metavar="L1,L2",
        help="system configurations to sweep (default both)",
    )
    sweep_parser.add_argument(
        "--organizations",
        type=_csv,
        default=["cuckoo"],
        metavar=",".join(ORGANIZATIONS),
        help="directory organizations to sweep (default cuckoo)",
    )
    sweep_parser.add_argument(
        "--ways", type=_csv_int, default=[4], metavar="N,...", help="associativities"
    )
    sweep_parser.add_argument(
        "--provisionings",
        type=_csv_float,
        default=[1.0],
        metavar="F,...",
        help="provisioning factors",
    )
    sweep_parser.add_argument(
        "--seeds", type=_csv_int, default=[0], metavar="N,...", help="trace seeds"
    )
    _add_sweep_options(sweep_parser)
    _add_engine_options(sweep_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the result store"
    )
    cache_parser.add_argument("--store", default=None, metavar="PATH")
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every cached result"
    )
    cache_parser.add_argument(
        "--compact", action="store_true", help="drop superseded records on disk"
    )
    return parser


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    store = None
    if not args.no_store:
        store = ResultStore(args.store) if args.store else ResultStore()
    workers = 1 if args.serial else args.workers

    progress = None
    if not args.quiet:

        def progress(event: str, done: int, total: int, spec: RunSpec) -> None:
            print(f"  [{done}/{total}] {event:9s} {spec.label()}", file=sys.stderr)

    return ParallelRunner(workers=workers, store=store, progress=progress)


def _cmd_list() -> int:
    from repro.engine.registry import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        kind = "simulation" if experiment.simulated else "analytical"
        print(f"{name:<{width}}  [{kind}]  {experiment.title}")
    return 0


def _cmd_profile(names: List[str], args: argparse.Namespace) -> int:
    """Profile one representative point per named experiment (``--profile``)."""
    import cProfile
    import pstats

    from repro.engine.execute import execute_spec
    from repro.engine.registry import EXPERIMENTS, run_experiment

    for name in names:
        experiment = EXPERIMENTS[name]
        if experiment.grid is not None:
            grid_kwargs = {
                option: value
                for option, value in (
                    ("workloads", args.workloads),
                    ("scale", args.scale),
                    ("measure_accesses", args.measure_accesses),
                    ("seed", args.seed),
                )
                if option in experiment.options and value is not None
            }
            spec = experiment.grid(**grid_kwargs).specs[0]
            label = spec.label()

            def target(spec=spec):
                execute_spec(spec)

        else:
            label = "analytical, full run"

            def target(name=name):
                run_experiment(name)

        print(f"== profiling {name}: {label}", file=sys.stderr)
        profiler = cProfile.Profile()
        profiler.enable()
        target()
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.engine.registry import EXPERIMENTS, run_experiment

    names = list(args.experiments)
    if len(names) == 1 and names[0] in ("all", "suite"):
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(expected: {', '.join(EXPERIMENTS)} or 'all')",
            file=sys.stderr,
        )
        return 2

    if args.profile:
        return _cmd_profile(names, args)

    runner = _make_runner(args)
    failures = 0
    for name in names:
        experiment = EXPERIMENTS[name]
        print(f"== {experiment.title}", file=sys.stderr)
        try:
            _result, table = run_experiment(
                name,
                runner=runner,
                workloads=args.workloads,
                scale=args.scale,
                measure_accesses=args.measure_accesses,
                seed=args.seed,
            )
        except Exception as exc:
            failures += 1
            print(f"{name} failed: {exc}", file=sys.stderr)
            continue
        print(table)
        print()
    _print_engine_summary(runner)
    return 1 if failures else 0


def _sweep_table(specs: Sequence[RunSpec], report) -> str:
    from repro.analysis.tables import format_percentage, render_table

    headers = [
        "Workload", "Config", "Organization", "Ways", "Provisioning", "Seed",
        "Avg attempts", "Invalidation rate", "Occupancy (vs 1x)",
    ]
    rows = []
    for spec in specs:
        try:
            result = report.result_for(spec)
        except Exception as exc:
            rows.append(
                [spec.workload, spec.tracked_level, spec.organization, spec.ways,
                 f"{spec.provisioning:g}x", spec.seed, "failed", str(exc)[:40], "-"]
            )
            continue
        rows.append(
            [
                spec.workload,
                spec.tracked_level,
                spec.organization,
                spec.ways,
                f"{spec.provisioning:g}x",
                spec.seed,
                f"{result.average_insertion_attempts:.2f}",
                format_percentage(result.forced_invalidation_rate, digits=3),
                format_percentage(result.occupancy_vs_worst_case, digits=1),
            ]
        )
    return render_table(headers, rows, title="Ad-hoc sweep")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.workloads.suite import WORKLOAD_NAMES

    workloads = args.workloads if args.workloads is not None else list(WORKLOAD_NAMES)
    try:
        grid = RunGrid.product(
            workload=workloads,
            tracked_level=args.tracked_levels,
            organization=args.organizations,
            ways=args.ways,
            provisioning=args.provisionings,
            seed=args.seeds,
            scale=args.scale if args.scale is not None else DEFAULT_SCALE,
            measure_accesses=(
                args.measure_accesses
                if args.measure_accesses is not None
                else DEFAULT_MEASURE_ACCESSES
            ),
        )
    except (TypeError, ValueError) as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    report = runner.run(grid)
    print(_sweep_table(grid.specs, report))
    _print_engine_summary(runner, report)
    return 0 if report.ok else 1


def _print_engine_summary(runner: ParallelRunner, report=None) -> None:
    store = runner.store
    parts = []
    if report is not None:
        parts.append(report.summary())
    if store is not None:
        parts.append(
            f"store {store.path}: {len(store)} entries, "
            f"{store.hits} hits / {store.misses} misses this run"
        )
    if parts:
        print(f"engine: {'; '.join(parts)}", file=sys.stderr)


def _cmd_cache(args: argparse.Namespace) -> int:
    store = ResultStore(args.store) if args.store else ResultStore()
    if args.clear:
        entries = len(store)
        store.clear()
        print(f"cleared {entries} cached results from {store.path}")
        return 0
    if args.compact:
        store.compact()
        print(f"compacted {store.path} to {len(store)} records")
        return 0
    size = store.path.stat().st_size if store.path.exists() else 0
    print(f"store:   {store.path}")
    print(f"entries: {len(store)}")
    print(f"size:    {size} bytes")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
