"""Execution of a single :class:`~repro.engine.spec.RunSpec`.

:func:`execute_spec` is the one place that turns a declarative spec back
into a live :class:`~repro.coherence.system.TiledCMP` simulation.  Both the
serial path and the :mod:`multiprocessing` workers of
:class:`~repro.engine.runner.ParallelRunner` go through it, so a point's
result is identical no matter where it ran: the worker rebuilds the whole
system from the spec and replays the same seeded trace.

The imports of :mod:`repro.experiments.common` are deferred to call time:
the experiments package imports the engine (drivers declare their grids
through it), so importing it back at module level would be circular.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict

from repro.engine.results import RunResult
from repro.engine.spec import RunSpec

__all__ = ["execute_spec", "execute_payload", "directory_factory_for_spec"]


def directory_factory_for_spec(spec: RunSpec, system: "object") -> Callable:
    """Build the per-slice directory factory a spec describes."""
    from repro.experiments import common

    if spec.organization == "sparse":
        return common.sparse_factory(system, ways=spec.ways, provisioning=spec.provisioning)
    if spec.organization == "skewed":
        return common.skewed_factory(system, ways=spec.ways, provisioning=spec.provisioning)
    if spec.organization != "cuckoo":  # defensive; RunSpec already validates
        raise ValueError(f"unknown organization {spec.organization!r}")
    if spec.hash_family is None:
        return common.cuckoo_factory(system, ways=spec.ways, provisioning=spec.provisioning)

    # Hash-family override (Section 5.5 ablation): same geometry resolution
    # as cuckoo_factory, explicit hash family per slice.
    from repro.config import DirectoryConfig
    from repro.core.cuckoo_directory import CuckooDirectory
    from repro.hashing.skewing import SkewingHashFamily
    from repro.hashing.strong import StrongHashFamily

    sets = DirectoryConfig.for_provisioning(
        system, ways=spec.ways, provisioning=spec.provisioning
    ).sets

    def factory(num_caches: int, slice_id: int):
        if spec.hash_family == "skewing":
            hashes = SkewingHashFamily(spec.ways, sets)
        else:
            hashes = StrongHashFamily(spec.ways, sets, seed=slice_id + 1)
        return CuckooDirectory(
            num_caches=num_caches, num_sets=sets, num_ways=spec.ways, hash_family=hashes
        )

    return factory


def execute_spec(spec: RunSpec) -> RunResult:
    """Simulate one point from scratch and return its condensed result."""
    from repro.config import CacheLevel
    from repro.experiments import common
    from repro.workloads.suite import get_workload

    started = time.perf_counter()
    system = common.scaled_system(
        CacheLevel(spec.tracked_level), num_cores=spec.num_cores, scale=spec.scale
    )
    workload = get_workload(spec.workload)
    factory = directory_factory_for_spec(spec, system)
    run = common.run_workload(
        workload,
        system,
        factory,
        measure_accesses=spec.measure_accesses,
        warmup_accesses=spec.warmup_accesses,
        seed=spec.seed,
        occupancy_sample_interval=spec.occupancy_sample_interval,
    )
    elapsed = time.perf_counter() - started
    return RunResult.from_workload_run(spec, run, elapsed_seconds=elapsed)


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, outcome dict out.

    Exceptions never escape — a failing point is reported as a ``"failed"``
    outcome so one bad spec cannot take down the pool or the rest of the
    grid (failure isolation).
    """
    try:
        spec = RunSpec.from_dict(payload)
    except Exception as exc:  # pragma: no cover - malformed payloads
        return {
            "status": "failed",
            "spec": dict(payload),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    try:
        result = execute_spec(spec)
        return {"status": "ok", "result": result.to_dict()}
    except Exception as exc:
        return {
            "status": "failed",
            "spec": spec.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
