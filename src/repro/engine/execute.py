"""Execution of a single :class:`~repro.engine.spec.RunSpec`.

:func:`execute_spec` is the one place that turns a declarative spec back
into a live :class:`~repro.coherence.system.TiledCMP` simulation.  Both the
serial path and the :mod:`multiprocessing` workers of
:class:`~repro.engine.runner.ParallelRunner` go through it, so a point's
result is identical no matter where it ran: the worker rebuilds the whole
system from the spec and replays the same seeded trace.

The imports of :mod:`repro.experiments.common` are deferred to call time:
the experiments package imports the engine (drivers declare their grids
through it), so importing it back at module level would be circular.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Callable, Dict

from repro.engine.results import RunResult
from repro.engine.spec import RunSpec
from repro.obs.logging import get_logger, set_context

_LOG = get_logger("repro.engine.execute")

__all__ = [
    "execute_spec",
    "execute_payload",
    "directory_factory_for_spec",
    "resolve_workload",
]


def directory_factory_for_spec(spec: RunSpec, system: "object") -> Callable:
    """Build the per-slice directory factory a spec describes."""
    from repro.experiments import common

    if spec.organization == "sparse":
        return common.sparse_factory(system, ways=spec.ways, provisioning=spec.provisioning)
    if spec.organization == "skewed":
        return common.skewed_factory(system, ways=spec.ways, provisioning=spec.provisioning)
    if spec.organization != "cuckoo":  # defensive; RunSpec already validates
        raise ValueError(f"unknown organization {spec.organization!r}")
    if spec.hash_family is None:
        return common.cuckoo_factory(system, ways=spec.ways, provisioning=spec.provisioning)

    # Hash-family override (Section 5.5 ablation): same geometry resolution
    # as cuckoo_factory, explicit hash family per slice.
    from repro.config import DirectoryConfig
    from repro.core.cuckoo_directory import CuckooDirectory
    from repro.hashing.skewing import SkewingHashFamily
    from repro.hashing.strong import StrongHashFamily

    sets = DirectoryConfig.for_provisioning(
        system, ways=spec.ways, provisioning=spec.provisioning
    ).sets

    def factory(num_caches: int, slice_id: int):
        if spec.hash_family == "skewing":
            hashes = SkewingHashFamily(spec.ways, sets)
        else:
            hashes = StrongHashFamily(spec.ways, sets, seed=slice_id + 1)
        return CuckooDirectory(
            num_caches=num_caches, num_sets=sets, num_ways=spec.ways, hash_family=hashes
        )

    return factory


def resolve_workload(spec: RunSpec, system: "object") -> "object":
    """The workload a spec points at: suite generator, trace replay, or mix.

    Trace replays are validated against the spec before simulation — a
    header whose workload name, seed or core count disagrees with the spec
    would silently cache the result under the wrong key, so it is an error;
    so is a recording too short to cover the spec's warm-up + measurement
    window (the chunked loop would otherwise just run out of accesses and
    mislabel a truncated run as the full point).
    """
    from repro.workloads.suite import get_workload

    if spec.mix is not None:
        from repro.traces.mix import parse_mix

        mix = parse_mix(spec.mix)
        if mix.total_cores != spec.num_cores:
            raise ValueError(
                f"mix {spec.mix!r} spans {mix.total_cores} cores but the spec "
                f"says num_cores={spec.num_cores}"
            )
        if spec.trace_fingerprint is not None:
            actual = mix.trace_fingerprint()
            if actual != spec.trace_fingerprint:
                raise ValueError(
                    f"mix {spec.mix!r} trace components no longer match the spec's "
                    f"content fingerprint (a referenced trace file was re-recorded); "
                    f"rebuild the spec from the current recordings"
                )
        _validate_mix_components(spec, mix, system)
        return mix
    if spec.trace is not None:
        from repro.traces.replay import TraceReplayWorkload

        replay = TraceReplayWorkload(spec.trace)
        header = replay.header
        problems = []
        if header.workload != spec.workload:
            problems.append(
                f"trace records {header.workload!r}, spec says {spec.workload!r}"
            )
        if header.seed != spec.seed:
            problems.append(f"trace seed {header.seed}, spec seed {spec.seed}")
        if header.num_cores != spec.num_cores:
            problems.append(
                f"trace has {header.num_cores} cores, spec says {spec.num_cores}"
            )
        # The generated stream is scale-specific (footprints are sized from
        # the scaled cache capacities), so a scale-mismatched replay would
        # simulate a mislabelled point.
        if header.scale is not None and header.scale != spec.scale:
            problems.append(
                f"trace was recorded at scale {header.scale}, spec says {spec.scale}"
            )
        if (
            spec.trace_fingerprint is not None
            and header.fingerprint != spec.trace_fingerprint
        ):
            problems.append(
                f"trace contents changed since the spec was built "
                f"(fingerprint {header.fingerprint[:12]}… != spec's "
                f"{spec.trace_fingerprint[:12]}…)"
            )
        if problems:
            raise ValueError(
                f"trace {spec.trace} does not match the spec: " + "; ".join(problems)
            )
        warmup = spec.warmup_accesses
        if warmup is None:
            warmup = replay.recommended_warmup(system)
        needed = warmup + spec.measure_accesses
        if header.num_accesses < needed:
            raise ValueError(
                f"trace {spec.trace} holds {header.num_accesses} accesses but the "
                f"spec needs {needed} (warmup {warmup} + measure {spec.measure_accesses})"
            )
        return replay
    return get_workload(spec.workload)


def _validate_mix_components(spec: RunSpec, mix: "object", system: "object") -> None:
    """Trace-backed mix components get the same scrutiny as ``spec.trace``.

    A component recorded at a different scale would simulate a mislabelled
    point, and a component shorter than its share of the run would make the
    mix stream run dry and silently truncate the measurement window — the
    exact hazards the plain-trace branch rejects.
    """
    import math

    from repro.traces.replay import TraceReplayWorkload

    warmup = spec.warmup_accesses
    if warmup is None:
        warmup = mix.recommended_warmup(system)
    # The stride schedule draws exactly `cores` accesses per component per
    # round of `total_cores`, so a run of N accesses consumes
    # ceil(N / total) * cores from each component.
    rounds_needed = math.ceil((warmup + spec.measure_accesses) / mix.total_cores)
    for workload, cores in mix.components:
        if not isinstance(workload, TraceReplayWorkload):
            continue
        header = workload.header
        if header.scale is not None and header.scale != spec.scale:
            raise ValueError(
                f"mix component {workload.path} was recorded at scale "
                f"{header.scale}, spec says {spec.scale}"
            )
        required = rounds_needed * cores
        if header.num_accesses < required:
            raise ValueError(
                f"mix component {workload.path} holds {header.num_accesses} "
                f"accesses but its {cores}-core share of the run needs "
                f"{required} (warmup {warmup} + measure {spec.measure_accesses})"
            )


def execute_spec(spec: RunSpec) -> RunResult:
    """Simulate one point from scratch and return its condensed result.

    The result records the simulate wall time and the executing pid so
    downstream reporting can aggregate cost per point and per worker; log
    lines emitted while the point runs carry its spec hash as context.
    """
    from repro.config import CacheLevel
    from repro.experiments import common

    set_context(spec=spec.key()[:12], workload=spec.workload)
    started = time.perf_counter()
    try:
        system = common.scaled_system(
            CacheLevel(spec.tracked_level), num_cores=spec.num_cores, scale=spec.scale
        )
        workload = resolve_workload(spec, system)
        factory = directory_factory_for_spec(spec, system)
        _LOG.debug("simulating %s", spec.label())
        run = common.run_workload(
            workload,
            system,
            factory,
            measure_accesses=spec.measure_accesses,
            warmup_accesses=spec.warmup_accesses,
            seed=spec.seed,
            occupancy_sample_interval=spec.occupancy_sample_interval,
            timeline_interval=spec.timeline_interval,
        )
        elapsed = time.perf_counter() - started
        _LOG.info("simulated %s in %.3fs", spec.label(), elapsed)
    finally:
        set_context(spec=None, workload=None)
    return RunResult.from_workload_run(
        spec, run, elapsed_seconds=elapsed, worker=str(os.getpid())
    )


def execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: spec dict in, outcome dict out.

    Exceptions never escape — a failing point is reported as a ``"failed"``
    outcome so one bad spec cannot take down the pool or the rest of the
    grid (failure isolation).
    """
    try:
        spec = RunSpec.from_dict(payload)
    except Exception as exc:  # pragma: no cover - malformed payloads
        return {
            "status": "failed",
            "spec": dict(payload),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    try:
        result = execute_spec(spec)
        outcome = {"status": "ok", "result": result.to_dict()}
        if result.timeline is not None:
            # Columnar numpy payload; pickles across the pool boundary and
            # is reattached by ParallelRunner._record_outcome.
            outcome["timeline"] = result.timeline.to_payload()
        return outcome
    except Exception as exc:
        return {
            "status": "failed",
            "spec": spec.to_dict(),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
