"""Serializable results of engine-executed simulation points.

:class:`RunResult` captures the measurement-window statistics the
experiment drivers actually consume — occupancy, insertion attempts,
forced invalidations, the attempt histogram — in plain JSON-serializable
form, so results can cross process boundaries and live in the on-disk
:class:`~repro.engine.store.ResultStore`.  ``elapsed_seconds`` is recorded
for reporting but excluded from equality so a cached result compares equal
to a freshly simulated one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.engine.spec import RunSpec

__all__ = ["RunResult", "RunFailure"]


@dataclass(frozen=True)
class RunResult:
    """Everything the experiments read from one simulated point."""

    spec: RunSpec
    accesses: int
    cache_hit_rate: float
    average_occupancy: float
    occupancy_vs_worst_case: float
    average_insertion_attempts: float
    forced_invalidation_rate: float
    insertions: int
    insertion_attempts: int
    forced_invalidations: int
    tracked_frames_total: int
    directory_capacity_total: int
    total_messages: int
    attempt_histogram: Tuple[Tuple[int, int], ...] = ()
    elapsed_seconds: float = field(default=0.0, compare=False)
    #: Pid of the process that simulated this point ("" for cached/legacy
    #: records); lets ``repro-run report`` aggregate cost per worker.
    worker: str = field(default="", compare=False)
    #: The run's counter :class:`~repro.obs.timeline.Timeline`, attached
    #: only when the spec requested one.  Excluded from equality and from
    #: :meth:`to_dict` — timelines are columnar payloads, persisted as a
    #: compact ``.npz`` sidecar by the result store, never as JSONL floats.
    timeline: Optional[object] = field(default=None, compare=False)

    def attempt_distribution(self) -> Dict[int, float]:
        """Normalised insertion-attempt histogram (Figure 11)."""
        total = sum(count for _, count in self.attempt_histogram)
        if total == 0:
            return {}
        return {attempts: count / total for attempts, count in self.attempt_histogram}

    def with_timeline(self, timeline: Optional[object]) -> "RunResult":
        """This result with ``timeline`` attached (results are frozen)."""
        return replace(self, timeline=timeline)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "accesses": self.accesses,
            "cache_hit_rate": self.cache_hit_rate,
            "average_occupancy": self.average_occupancy,
            "occupancy_vs_worst_case": self.occupancy_vs_worst_case,
            "average_insertion_attempts": self.average_insertion_attempts,
            "forced_invalidation_rate": self.forced_invalidation_rate,
            "insertions": self.insertions,
            "insertion_attempts": self.insertion_attempts,
            "forced_invalidations": self.forced_invalidations,
            "tracked_frames_total": self.tracked_frames_total,
            "directory_capacity_total": self.directory_capacity_total,
            "total_messages": self.total_messages,
            "attempt_histogram": [list(pair) for pair in self.attempt_histogram],
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        payload = dict(data)
        spec = RunSpec.from_dict(payload.pop("spec"))
        histogram = tuple(
            (int(attempts), int(count))
            for attempts, count in payload.pop("attempt_histogram", [])
        )
        return cls(spec=spec, attempt_histogram=histogram, **payload)

    @classmethod
    def from_workload_run(
        cls,
        spec: RunSpec,
        run: "object",
        elapsed_seconds: float = 0.0,
        worker: str = "",
    ) -> "RunResult":
        """Condense a :class:`~repro.experiments.common.WorkloadRun`."""
        sim = run.result
        stats = sim.directory_stats
        histogram = tuple(sorted((int(k), int(v)) for k, v in stats.attempt_histogram.items()))
        # Only a *requested* timeline rides along: every simulation collects
        # the always-on occupancy channel, but storing a sidecar per point
        # for it would bloat every sweep for data already condensed into
        # average_occupancy.
        timeline = sim.timeline if spec.timeline_interval is not None else None
        if timeline is not None and not timeline.enabled:
            timeline = None
        return cls(
            spec=spec,
            accesses=sim.accesses,
            cache_hit_rate=sim.cache_hit_rate,
            average_occupancy=sim.average_occupancy,
            occupancy_vs_worst_case=run.occupancy_vs_worst_case,
            average_insertion_attempts=stats.average_insertion_attempts,
            forced_invalidation_rate=stats.forced_invalidation_rate,
            insertions=stats.insertions,
            insertion_attempts=stats.insertion_attempts,
            forced_invalidations=stats.forced_invalidations,
            tracked_frames_total=run.tracked_frames_total,
            directory_capacity_total=run.directory_capacity_total,
            total_messages=sim.traffic.total_messages,
            attempt_histogram=histogram,
            elapsed_seconds=elapsed_seconds,
            worker=worker,
            timeline=timeline,
        )


@dataclass(frozen=True)
class RunFailure:
    """An isolated simulation-point failure (the rest of the grid proceeds)."""

    spec: RunSpec
    error: str
    traceback: str = ""
    timestamp: float = field(default_factory=time.time, compare=False)

    def __str__(self) -> str:
        return f"{self.spec.label()}: {self.error}"
