"""Serializable results of engine-executed simulation points.

:class:`RunResult` captures the measurement-window statistics the
experiment drivers actually consume — occupancy, insertion attempts,
forced invalidations, the attempt histogram — in plain JSON-serializable
form, so results can cross process boundaries and live in the on-disk
:class:`~repro.engine.store.ResultStore`.  ``elapsed_seconds`` is recorded
for reporting but excluded from equality so a cached result compares equal
to a freshly simulated one.

This module also owns the **columnar codec** the storage engine seals
records with: :func:`encode_record_batch` packs ``(key, ts, payload)``
store records into one numpy structured array (plus a flattened
attempt-histogram array and a JSON side-channel for the rare payload that
does not conform to the fixed schema), and :func:`decode_record_row`
reverses it bit-exactly.  The codec is keyed by
:data:`~repro.engine.spec.SPEC_VERSION` — the version is stamped into the
segment manifest, and because every store key is salted with the same
version, records encoded under a different version can never be served
for a current-spec lookup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.engine.spec import RunSpec

__all__ = [
    "RunResult",
    "RunFailure",
    "EncodedBatch",
    "encode_record_batch",
    "decode_record_row",
    "NONE_INT_SENTINEL",
    "OPTIONAL_INT_COLUMNS",
    "OPTIONAL_STR_COLUMNS",
]


@dataclass(frozen=True)
class RunResult:
    """Everything the experiments read from one simulated point."""

    spec: RunSpec
    accesses: int
    cache_hit_rate: float
    average_occupancy: float
    occupancy_vs_worst_case: float
    average_insertion_attempts: float
    forced_invalidation_rate: float
    insertions: int
    insertion_attempts: int
    forced_invalidations: int
    tracked_frames_total: int
    directory_capacity_total: int
    total_messages: int
    attempt_histogram: Tuple[Tuple[int, int], ...] = ()
    elapsed_seconds: float = field(default=0.0, compare=False)
    #: Pid of the process that simulated this point ("" for cached/legacy
    #: records); lets ``repro-run report`` aggregate cost per worker.
    worker: str = field(default="", compare=False)
    #: The run's counter :class:`~repro.obs.timeline.Timeline`, attached
    #: only when the spec requested one.  Excluded from equality and from
    #: :meth:`to_dict` — timelines are columnar payloads, persisted as a
    #: compact ``.npz`` sidecar by the result store, never as JSONL floats.
    timeline: Optional[object] = field(default=None, compare=False)

    def attempt_distribution(self) -> Dict[int, float]:
        """Normalised insertion-attempt histogram (Figure 11)."""
        total = sum(count for _, count in self.attempt_histogram)
        if total == 0:
            return {}
        return {attempts: count / total for attempts, count in self.attempt_histogram}

    def with_timeline(self, timeline: Optional[object]) -> "RunResult":
        """This result with ``timeline`` attached (results are frozen)."""
        return replace(self, timeline=timeline)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "accesses": self.accesses,
            "cache_hit_rate": self.cache_hit_rate,
            "average_occupancy": self.average_occupancy,
            "occupancy_vs_worst_case": self.occupancy_vs_worst_case,
            "average_insertion_attempts": self.average_insertion_attempts,
            "forced_invalidation_rate": self.forced_invalidation_rate,
            "insertions": self.insertions,
            "insertion_attempts": self.insertion_attempts,
            "forced_invalidations": self.forced_invalidations,
            "tracked_frames_total": self.tracked_frames_total,
            "directory_capacity_total": self.directory_capacity_total,
            "total_messages": self.total_messages,
            "attempt_histogram": [list(pair) for pair in self.attempt_histogram],
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        payload = dict(data)
        spec = RunSpec.from_dict(payload.pop("spec"))
        histogram = tuple(
            (int(attempts), int(count))
            for attempts, count in payload.pop("attempt_histogram", [])
        )
        return cls(spec=spec, attempt_histogram=histogram, **payload)

    @classmethod
    def from_workload_run(
        cls,
        spec: RunSpec,
        run: "object",
        elapsed_seconds: float = 0.0,
        worker: str = "",
    ) -> "RunResult":
        """Condense a :class:`~repro.experiments.common.WorkloadRun`."""
        sim = run.result
        stats = sim.directory_stats
        histogram = tuple(sorted((int(k), int(v)) for k, v in stats.attempt_histogram.items()))
        # Only a *requested* timeline rides along: every simulation collects
        # the always-on occupancy channel, but storing a sidecar per point
        # for it would bloat every sweep for data already condensed into
        # average_occupancy.
        timeline = sim.timeline if spec.timeline_interval is not None else None
        if timeline is not None and not timeline.enabled:
            timeline = None
        return cls(
            spec=spec,
            accesses=sim.accesses,
            cache_hit_rate=sim.cache_hit_rate,
            average_occupancy=sim.average_occupancy,
            occupancy_vs_worst_case=run.occupancy_vs_worst_case,
            average_insertion_attempts=stats.average_insertion_attempts,
            forced_invalidation_rate=stats.forced_invalidation_rate,
            insertions=stats.insertions,
            insertion_attempts=stats.insertion_attempts,
            forced_invalidations=stats.forced_invalidations,
            tracked_frames_total=run.tracked_frames_total,
            directory_capacity_total=run.directory_capacity_total,
            total_messages=sim.traffic.total_messages,
            attempt_histogram=histogram,
            elapsed_seconds=elapsed_seconds,
            worker=worker,
            timeline=timeline,
        )


# -- columnar record codec ---------------------------------------------------
#
# One store record is the envelope ``(key, ts, payload)``: the spec content
# hash, the writer's commit timestamp (time_ns; used for cross-writer
# last-wins ordering), and the ``RunResult.to_dict`` payload.  A *conforming*
# payload — the overwhelmingly common case — packs into fixed columns whose
# names are the flat union of spec fields and result fields (they are
# disjoint, and deliberately match ``repro.analysis.frame.flatten_record``'s
# namespace so columnar aggregation can group by them directly).  Anything
# else (unknown fields, wrong types, out-of-range ints) rides verbatim in
# the JSON extras side-channel keyed by row index.

#: Sentinel encoding ``None`` for optional integer columns.
_NONE_INT = -1

_SPEC_STR_FIELDS = ("workload", "tracked_level", "organization")
_SPEC_OPT_STR_FIELDS = ("hash_family", "trace", "mix", "trace_fingerprint")
_SPEC_INT_FIELDS = (
    "ways", "num_cores", "scale", "seed", "measure_accesses",
    "occupancy_sample_interval",
)
_SPEC_OPT_INT_FIELDS = ("warmup_accesses", "timeline_interval")
_SPEC_FLOAT_FIELDS = ("provisioning",)
_SPEC_FIELDS = frozenset(
    _SPEC_STR_FIELDS + _SPEC_OPT_STR_FIELDS + _SPEC_INT_FIELDS
    + _SPEC_OPT_INT_FIELDS + _SPEC_FLOAT_FIELDS
)

_RESULT_INT_FIELDS = (
    "accesses", "insertions", "insertion_attempts", "forced_invalidations",
    "tracked_frames_total", "directory_capacity_total", "total_messages",
)
_RESULT_FLOAT_FIELDS = (
    "cache_hit_rate", "average_occupancy", "occupancy_vs_worst_case",
    "average_insertion_attempts", "forced_invalidation_rate",
    "elapsed_seconds",
)
_RESULT_STR_FIELDS = ("worker",)
_RESULT_FIELDS = frozenset(
    _RESULT_INT_FIELDS + _RESULT_FLOAT_FIELDS + _RESULT_STR_FIELDS
    + ("spec", "attempt_histogram")
)

_INT64_MIN, _INT64_MAX = -(2 ** 63), 2 ** 63 - 1

# Public view of the sentinel scheme, for columnar consumers (aggregation)
# that need to map encoded cells back to spec-level ``None`` values.
NONE_INT_SENTINEL = _NONE_INT
OPTIONAL_INT_COLUMNS = _SPEC_OPT_INT_FIELDS
OPTIONAL_STR_COLUMNS = _SPEC_OPT_STR_FIELDS


class _NonConforming(Exception):
    """A payload the fixed columns cannot represent losslessly."""


def _int_cell(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _NonConforming(f"expected int, got {value!r}")
    if not (_INT64_MIN <= value <= _INT64_MAX):
        raise _NonConforming(f"int out of int64 range: {value!r}")
    return value


def _opt_int_cell(value: object) -> int:
    if value is None:
        return _NONE_INT
    cell = _int_cell(value)
    if cell == _NONE_INT:
        raise _NonConforming("optional int collides with the None sentinel")
    return cell


def _float_cell(value: object) -> float:
    # Strictly float: an int cell would decode back as ``x.0`` and break
    # byte-identical JSONL round-trips.
    if not isinstance(value, float):
        raise _NonConforming(f"expected float, got {value!r}")
    return value


def _str_cell(value: object) -> str:
    if not isinstance(value, str):
        raise _NonConforming(f"expected str, got {value!r}")
    return value


def _opt_str_cell(value: object) -> str:
    if value is None:
        return ""
    cell = _str_cell(value)
    if not cell:
        raise _NonConforming("optional str collides with the None sentinel")
    return cell


def _conforming_cells(payload: Mapping) -> Tuple[Dict[str, object], List[Tuple[int, int]]]:
    """Fixed-column cells for ``payload``, or raise :class:`_NonConforming`.

    A conforming payload has *exactly* the field sets ``RunResult.to_dict``
    and ``RunSpec.to_dict`` emit — no defaults are invented for missing
    fields, because decode must reproduce the sealed payload byte-for-byte.
    """
    if not isinstance(payload, Mapping):
        raise _NonConforming("payload is not a mapping")
    if set(payload) != _RESULT_FIELDS:
        raise _NonConforming(
            f"result fields differ from schema: {sorted(set(payload) ^ _RESULT_FIELDS)}"
        )
    spec = payload["spec"]
    if not isinstance(spec, Mapping) or set(spec) != _SPEC_FIELDS:
        raise _NonConforming("spec fields differ from schema")

    cells: Dict[str, object] = {}
    for name in _SPEC_STR_FIELDS:
        cells[name] = _str_cell(spec[name])
    for name in _SPEC_OPT_STR_FIELDS:
        cells[name] = _opt_str_cell(spec[name])
    for name in _SPEC_INT_FIELDS:
        cells[name] = _int_cell(spec[name])
    for name in _SPEC_OPT_INT_FIELDS:
        cells[name] = _opt_int_cell(spec[name])
    for name in _SPEC_FLOAT_FIELDS:
        cells[name] = _float_cell(spec[name])

    for name in _RESULT_INT_FIELDS:
        cells[name] = _int_cell(payload[name])
    for name in _RESULT_FLOAT_FIELDS:
        cells[name] = _float_cell(payload[name])
    for name in _RESULT_STR_FIELDS:
        cells[name] = _str_cell(payload[name])

    histogram: List[Tuple[int, int]] = []
    for pair in payload["attempt_histogram"]:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise _NonConforming(f"bad attempt_histogram pair: {pair!r}")
        histogram.append((_int_cell(pair[0]), _int_cell(pair[1])))
    return cells, histogram


@dataclass(frozen=True)
class EncodedBatch:
    """One sealed batch: fixed columns + histogram heap + extras side-channel."""

    #: Structured array: ``key``/``ts`` plus the flat spec/result columns and
    #: the per-row ``hist_off``/``hist_len`` histogram-heap window.
    main: np.ndarray
    #: ``(total_pairs, 2)`` int64 heap of attempt-histogram pairs.
    hist: np.ndarray
    #: ``{row index: verbatim payload}`` for non-conforming records.
    extras: Dict[int, Dict[str, object]]


def encode_record_batch(
    records: Sequence[Tuple[str, int, Mapping]],
) -> EncodedBatch:
    """Pack ``(key, ts, payload)`` records into an :class:`EncodedBatch`."""
    cells_per_row: List[Optional[Dict[str, object]]] = []
    hists: List[List[Tuple[int, int]]] = []
    extras: Dict[int, Dict[str, object]] = {}
    for row, (key, ts, payload) in enumerate(records):
        try:
            cells, histogram = _conforming_cells(payload)
        except _NonConforming:
            extras[row] = dict(payload) if isinstance(payload, Mapping) else {
                "__value__": payload
            }
            cells, histogram = None, []
        cells_per_row.append(cells)
        hists.append(histogram)

    def str_width(name: str, values: List[str]) -> int:
        return max([1] + [len(v) for v in values])

    str_columns: Dict[str, List[str]] = {
        "key": [str(key) for key, _ts, _payload in records]
    }
    for name in _SPEC_STR_FIELDS + _SPEC_OPT_STR_FIELDS + _RESULT_STR_FIELDS:
        str_columns[name] = [
            (cells[name] if cells is not None else "") for cells in cells_per_row
        ]

    dtype: List[Tuple[str, str]] = [("key", f"U{str_width('key', str_columns['key'])}")]
    dtype.append(("ts", "i8"))
    for name in _SPEC_STR_FIELDS + _SPEC_OPT_STR_FIELDS:
        dtype.append((name, f"U{str_width(name, str_columns[name])}"))
    for name in _SPEC_INT_FIELDS + _SPEC_OPT_INT_FIELDS:
        dtype.append((name, "i8"))
    for name in _SPEC_FLOAT_FIELDS:
        dtype.append((name, "f8"))
    for name in _RESULT_INT_FIELDS:
        dtype.append((name, "i8"))
    for name in _RESULT_FLOAT_FIELDS:
        dtype.append((name, "f8"))
    for name in _RESULT_STR_FIELDS:
        dtype.append((name, f"U{str_width(name, str_columns[name])}"))
    dtype.extend([("hist_off", "i8"), ("hist_len", "i8")])

    main = np.zeros(len(records), dtype=dtype)
    main["key"] = str_columns["key"]
    main["ts"] = [ts for _key, ts, _payload in records]
    numeric_fields = (
        _SPEC_INT_FIELDS + _SPEC_OPT_INT_FIELDS + _SPEC_FLOAT_FIELDS
        + _RESULT_INT_FIELDS + _RESULT_FLOAT_FIELDS
    )
    for row, cells in enumerate(cells_per_row):
        if cells is None:
            continue
        record = main[row]
        for name in numeric_fields:
            record[name] = cells[name]
    for name in _SPEC_STR_FIELDS + _SPEC_OPT_STR_FIELDS + _RESULT_STR_FIELDS:
        main[name] = str_columns[name]

    offset = 0
    flat_pairs: List[Tuple[int, int]] = []
    for row, histogram in enumerate(hists):
        main[row]["hist_off"] = offset
        main[row]["hist_len"] = len(histogram)
        flat_pairs.extend(histogram)
        offset += len(histogram)
    hist = np.asarray(flat_pairs, dtype=np.int64).reshape(len(flat_pairs), 2)
    return EncodedBatch(main=main, hist=hist, extras=extras)


def decode_record_row(
    main: np.ndarray,
    hist: np.ndarray,
    extras: Mapping[int, Mapping],
    row: int,
) -> Tuple[str, Dict[str, object]]:
    """``(key, payload)`` of one encoded row, bit-exact to what was sealed."""
    record = main[row]
    key = str(record["key"])
    extra = extras.get(row)
    if extra is not None:
        payload = dict(extra)
        if set(payload) == {"__value__"}:
            return key, payload["__value__"]
        return key, payload

    spec: Dict[str, object] = {
        "workload": str(record["workload"]),
        "tracked_level": str(record["tracked_level"]),
        "organization": str(record["organization"]),
        "ways": int(record["ways"]),
        "provisioning": float(record["provisioning"]),
        "num_cores": int(record["num_cores"]),
        "scale": int(record["scale"]),
        "seed": int(record["seed"]),
        "measure_accesses": int(record["measure_accesses"]),
        "warmup_accesses": _decode_opt_int(record["warmup_accesses"]),
        "occupancy_sample_interval": int(record["occupancy_sample_interval"]),
        "hash_family": _decode_opt_str(record["hash_family"]),
        "trace": _decode_opt_str(record["trace"]),
        "mix": _decode_opt_str(record["mix"]),
        "trace_fingerprint": _decode_opt_str(record["trace_fingerprint"]),
        "timeline_interval": _decode_opt_int(record["timeline_interval"]),
    }
    off, length = int(record["hist_off"]), int(record["hist_len"])
    histogram = [
        [int(hist[index][0]), int(hist[index][1])]
        for index in range(off, off + length)
    ]
    # Field order matches RunResult.to_dict so an export of decoded records
    # is byte-identical to an export of the original payload dicts.
    payload = {
        "spec": spec,
        "accesses": int(record["accesses"]),
        "cache_hit_rate": float(record["cache_hit_rate"]),
        "average_occupancy": float(record["average_occupancy"]),
        "occupancy_vs_worst_case": float(record["occupancy_vs_worst_case"]),
        "average_insertion_attempts": float(record["average_insertion_attempts"]),
        "forced_invalidation_rate": float(record["forced_invalidation_rate"]),
        "insertions": int(record["insertions"]),
        "insertion_attempts": int(record["insertion_attempts"]),
        "forced_invalidations": int(record["forced_invalidations"]),
        "tracked_frames_total": int(record["tracked_frames_total"]),
        "directory_capacity_total": int(record["directory_capacity_total"]),
        "total_messages": int(record["total_messages"]),
        "attempt_histogram": histogram,
        "elapsed_seconds": float(record["elapsed_seconds"]),
        "worker": str(record["worker"]),
    }
    return key, payload


def _decode_opt_int(value) -> Optional[int]:
    cell = int(value)
    return None if cell == _NONE_INT else cell


def _decode_opt_str(value) -> Optional[str]:
    cell = str(value)
    return cell if cell else None


@dataclass(frozen=True)
class RunFailure:
    """An isolated simulation-point failure (the rest of the grid proceeds)."""

    spec: RunSpec
    error: str
    traceback: str = ""
    timestamp: float = field(default_factory=time.time, compare=False)

    def __str__(self) -> str:
        return f"{self.spec.label()}: {self.error}"
