"""Sharded execution of run grids across a worker pool.

:class:`ParallelRunner` takes a :class:`~repro.engine.spec.RunGrid`,
answers what it can from the :class:`~repro.engine.store.ResultStore`
(content-addressed, so only bit-identical points hit), shards the
remaining specs across a :mod:`multiprocessing` pool, and folds every
outcome into a :class:`GridReport`.  Each worker rebuilds its system from
the spec (:func:`repro.engine.execute.execute_spec`), so parallel results
are identical to serial ones; a failing point is isolated as a
:class:`~repro.engine.results.RunFailure` without aborting the grid.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.engine.execute import execute_payload, execute_spec
from repro.engine.results import RunFailure, RunResult
from repro.engine.spec import RunGrid, RunSpec
from repro.engine.store import ResultStore

__all__ = [
    "EngineError",
    "GridReport",
    "ParallelRunner",
    "StoreOnlyRunner",
    "default_workers",
    "serial_runner",
]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"

#: Progress event callback: ``(event, done, total, spec)`` where ``event``
#: is one of ``"cached"``, ``"simulated"``, ``"failed"``.
ProgressCallback = Callable[[str, int, int, RunSpec], None]


class EngineError(RuntimeError):
    """Raised when a requested simulation point failed to execute."""


def default_workers() -> int:
    """Worker count: ``$REPRO_ENGINE_WORKERS`` or the machine's CPU count."""
    override = os.environ.get(WORKERS_ENV_VAR)
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


@dataclass
class GridReport:
    """Outcome of one grid execution, addressable by spec."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    failures: Dict[str, RunFailure] = field(default_factory=dict)
    simulated: int = 0
    cached: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, spec: RunSpec) -> RunResult:
        """The result of ``spec``; raises :class:`EngineError` if it failed."""
        key = spec.key()
        result = self.results.get(key)
        if result is not None:
            return result
        failure = self.failures.get(key)
        if failure is not None:
            detail = f"\n{failure.traceback}" if failure.traceback else ""
            raise EngineError(f"simulation point failed — {failure}{detail}")
        raise KeyError(f"spec not part of this report: {spec.label()}")

    def summary(self) -> str:
        parts = [
            f"{self.simulated} simulated",
            f"{self.cached} cached",
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        return f"{', '.join(parts)} in {self.elapsed_seconds:.2f}s"


class ParallelRunner:
    """Executes run grids, reusing cached results and sharding the rest.

    Parameters
    ----------
    workers:
        Pool size; ``None`` means :func:`default_workers`.  ``1`` executes
        in-process (no pool), which is also used automatically for
        single-point remainders.
    store:
        A :class:`ResultStore` for incremental re-runs, or ``None`` to
        always simulate.
    progress:
        Optional callback invoked once per completed point.
    start_method:
        :mod:`multiprocessing` start method; defaults to ``fork`` where
        available (cheap on Linux) and ``spawn`` elsewhere.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self._workers = workers
        self._store = store
        self._progress = progress
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method

    @property
    def workers(self) -> int:
        return self._workers if self._workers is not None else default_workers()

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    # -- execution -----------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> RunResult:
        """Execute (or fetch) a single point."""
        report = self.run([spec])
        return report.result_for(spec)

    def run(self, grid: Union[RunGrid, Iterable[RunSpec]]) -> GridReport:
        """Execute every point of ``grid``, returning a :class:`GridReport`."""
        if not isinstance(grid, RunGrid):
            grid = RunGrid(grid)
        started = time.perf_counter()
        report = GridReport()
        total = len(grid)
        pending: List[RunSpec] = []

        for spec in grid:
            cached = self._store.get(spec) if self._store is not None else None
            if cached is not None:
                report.results[spec.key()] = cached
                report.cached += 1
                self._emit("cached", report, total, spec)
            else:
                pending.append(spec)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                self._run_serial(pending, report, total)
            else:
                self._run_pool(pending, report, total)

        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _emit(self, event: str, report: GridReport, total: int, spec: RunSpec) -> None:
        if self._progress is not None:
            self._progress(event, report.total, total, spec)

    def _record_outcome(
        self, outcome: Dict[str, object], report: GridReport, total: int
    ) -> None:
        if outcome["status"] == "ok":
            result = RunResult.from_dict(outcome["result"])
            report.results[result.spec.key()] = result
            report.simulated += 1
            if self._store is not None:
                self._store.put(result)
            self._emit("simulated", report, total, result.spec)
        else:
            spec = RunSpec.from_dict(outcome["spec"])
            failure = RunFailure(
                spec=spec,
                error=str(outcome.get("error", "unknown error")),
                traceback=str(outcome.get("traceback", "")),
            )
            report.failures[spec.key()] = failure
            self._emit("failed", report, total, spec)

    def _run_serial(self, pending: List[RunSpec], report: GridReport, total: int) -> None:
        for spec in pending:
            self._record_outcome(execute_payload(spec.to_dict()), report, total)

    def _run_pool(self, pending: List[RunSpec], report: GridReport, total: int) -> None:
        context = multiprocessing.get_context(self._start_method)
        pool_size = min(self.workers, len(pending))
        payloads = [spec.to_dict() for spec in pending]
        with context.Pool(processes=pool_size) as pool:
            for outcome in pool.imap_unordered(execute_payload, payloads, chunksize=1):
                self._record_outcome(outcome, report, total)


class StoreOnlyRunner(ParallelRunner):
    """A runner that answers exclusively from the result store.

    Grid points already cached resolve normally; anything else becomes a
    :class:`RunFailure` instead of a simulation.  This is what lets
    ``repro-run report`` re-render any experiment from cached results with
    a hard guarantee that nothing is re-simulated.
    """

    def __init__(self, store: ResultStore,
                 progress: Optional[ProgressCallback] = None) -> None:
        super().__init__(workers=1, store=store, progress=progress)

    def _run_serial(
        self, pending: List[RunSpec], report: GridReport, total: int
    ) -> None:
        for spec in pending:
            report.failures[spec.key()] = RunFailure(
                spec=spec,
                error=(
                    "not in the result store; simulate it first with "
                    "'repro-run run' or 'repro-run sweep'"
                ),
            )
            self._emit("failed", report, total, spec)

    def _run_pool(
        self, pending: List[RunSpec], report: GridReport, total: int
    ) -> None:  # pragma: no cover - workers pinned to 1 in __init__
        self._run_serial(pending, report, total)


def serial_runner() -> ParallelRunner:
    """The default runner of the experiment drivers: in-process, no cache."""
    return ParallelRunner(workers=1, store=None)
