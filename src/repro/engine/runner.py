"""Sharded execution of run grids across a worker pool.

:class:`ParallelRunner` takes a :class:`~repro.engine.spec.RunGrid`,
answers what it can from the :class:`~repro.engine.store.ResultStore`
(content-addressed, so only bit-identical points hit), shards the
remaining specs across a :mod:`multiprocessing` pool, and folds every
outcome into a :class:`GridReport`.  Each worker rebuilds its system from
the spec (:func:`repro.engine.execute.execute_spec`), so parallel results
are identical to serial ones; a failing point is isolated as a
:class:`~repro.engine.results.RunFailure` without aborting the grid.

Telemetry crosses the process boundary in two streams, both optional:

* **Live progress** — workers push small ``(kind, pid, ts, label)``
  events (``online``/``start``/``heartbeat``/``done``) onto a
  ``multiprocessing.Queue`` installed by the pool initializer; the parent
  drains it between completions into a
  :class:`~repro.obs.progress.SweepMonitor` (per-worker last-seen,
  points/s, ETA) and calls the ``tick`` callback so the CLI's renderer
  can repaint.  Validated under both ``fork`` and ``spawn``.
* **Metrics and spans** — when telemetry is enabled
  (:func:`repro.obs.enable`), each worker outcome carries the worker's
  cumulative registry/tracer snapshot; the parent keeps the latest
  snapshot per pid (workers live for the whole pool, so cumulative ==
  final) and folds them into its own global registry/tracer after the
  pool drains.  Only summaries cross the boundary — never per-access
  data.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from queue import Empty
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro import obs
from repro.engine.execute import execute_payload, execute_spec
from repro.engine.results import RunFailure, RunResult
from repro.engine.spec import RunGrid, RunSpec
from repro.engine.store import ResultStore
from repro.obs.logging import apply_logging_state, logging_state
from repro.obs.metrics import REGISTRY
from repro.obs.progress import SweepMonitor, make_event
from repro.obs.timeline import Timeline
from repro.obs.tracing import TRACER

__all__ = [
    "EngineError",
    "GridReport",
    "ParallelRunner",
    "StoreOnlyRunner",
    "default_workers",
    "serial_runner",
]

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"

#: Progress event callback: ``(event, done, total, spec)`` where ``event``
#: is one of ``"cached"``, ``"simulated"``, ``"failed"``.
ProgressCallback = Callable[[str, int, int, RunSpec], None]

#: Default seconds between worker heartbeats while a point simulates.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

# -- worker-side plumbing (module level so fork AND spawn can pickle it) ----

#: The event queue this worker reports to (installed by ``_worker_init``).
_worker_queue = None
#: Label of the point this worker is currently simulating, read by the
#: heartbeat thread.  A mutable cell, not a rebound global, so the thread
#: sees updates without locking (single writer, torn reads impossible for
#: a str slot).
_worker_label = {"current": ""}
#: Store path this worker persists results to (installed by ``_worker_init``);
#: ``None`` keeps persistence in the parent.
_worker_store_path = None
#: This worker's lazily opened write-only store handle.
_worker_store = None


def _persist_in_worker(result: RunResult) -> bool:
    """Append ``result`` to this worker's own WAL of the shared store.

    Each worker writes to ``wal-w<pid>.jsonl`` inside the store's segment
    directory and seals its own segments into the shared manifest, so the
    parent only has to *note* the result — no record crosses the process
    boundary twice.  Returns ``False`` (parent persists instead) if this
    worker has no store or the append failed; persistence problems must
    never cost a finished simulation.
    """
    global _worker_store
    if _worker_store_path is None:
        return False
    try:
        if _worker_store is None:
            _worker_store = ResultStore(
                _worker_store_path, writer=f"w{os.getpid()}", preload=False
            )
        _worker_store.put(result)
        return True
    except Exception:
        return False


def _put_event(queue, kind: str, label: str = "") -> None:
    """Best-effort event send: telemetry must never kill a simulation."""
    try:
        queue.put_nowait(make_event(kind, os.getpid(), label))
    except Exception:
        pass


def _heartbeat_loop(queue, interval: float) -> None:
    while True:
        time.sleep(interval)
        _put_event(queue, "heartbeat", _worker_label["current"])


def _worker_init(
    queue, obs_state, log_state, heartbeat_interval: float, store_path=None
) -> None:
    """Pool initializer: replicate parent telemetry state, start heartbeats."""
    global _worker_queue, _worker_store_path, _worker_store
    _worker_queue = queue
    _worker_store_path = store_path
    _worker_store = None
    obs.apply_state(obs_state)
    if log_state is not None:
        apply_logging_state(log_state)
    if queue is not None:
        # The immediate "online" event doubles as the first beat, so worker
        # liveness is observable before the first point completes.
        _put_event(queue, "online")
        if heartbeat_interval > 0:
            thread = threading.Thread(
                target=_heartbeat_loop,
                args=(queue, heartbeat_interval),
                daemon=True,
            )
            thread.start()


def _execute_payload_observed(payload: Dict[str, object]) -> Dict[str, object]:
    """Worker entry: :func:`execute_payload` plus progress + telemetry.

    Kept separate from ``execute_payload`` so the execution path stays
    pure (and serial runs don't double-report telemetry they already
    accumulated in-process).
    """
    queue = _worker_queue
    label = str(payload.get("workload", ""))
    if queue is not None:
        _worker_label["current"] = label
        _put_event(queue, "start", label)
    outcome = execute_payload(payload)
    if outcome.get("status") == "ok" and _worker_store_path is not None:
        result = RunResult.from_dict(outcome["result"])
        timeline_payload = outcome.get("timeline")
        if timeline_payload is not None:
            result = result.with_timeline(Timeline.from_payload(timeline_payload))
        if _persist_in_worker(result):
            # The parent notes the result instead of re-writing it.
            outcome["persisted"] = True
    if queue is not None:
        _worker_label["current"] = ""
        _put_event(queue, "done", label)
    if REGISTRY.enabled or TRACER.enabled:
        # Cumulative snapshot: the parent keeps the latest per pid.
        outcome["telemetry"] = {
            "pid": os.getpid(),
            "metrics": REGISTRY.snapshot(),
            "phases": TRACER.snapshot(),
        }
    return outcome


class EngineError(RuntimeError):
    """Raised when a requested simulation point failed to execute."""


def default_workers() -> int:
    """Worker count: ``$REPRO_ENGINE_WORKERS`` or the machine's CPU count."""
    override = os.environ.get(WORKERS_ENV_VAR)
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


@dataclass
class GridReport:
    """Outcome of one grid execution, addressable by spec."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    failures: Dict[str, RunFailure] = field(default_factory=dict)
    simulated: int = 0
    cached: int = 0
    elapsed_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results) + len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def worker_pids(self) -> List[str]:
        """Distinct pids that simulated points of this grid (cached and
        legacy results carry no worker and are excluded)."""
        return sorted({r.worker for r in self.results.values() if r.worker})

    def result_for(self, spec: RunSpec) -> RunResult:
        """The result of ``spec``; raises :class:`EngineError` if it failed."""
        key = spec.key()
        result = self.results.get(key)
        if result is not None:
            return result
        failure = self.failures.get(key)
        if failure is not None:
            detail = f"\n{failure.traceback}" if failure.traceback else ""
            raise EngineError(f"simulation point failed — {failure}{detail}")
        raise KeyError(f"spec not part of this report: {spec.label()}")

    def summary(self) -> str:
        parts = [
            f"{self.simulated} simulated",
            f"{self.cached} cached",
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        return f"{', '.join(parts)} in {self.elapsed_seconds:.2f}s"


class ParallelRunner:
    """Executes run grids, reusing cached results and sharding the rest.

    Parameters
    ----------
    workers:
        Pool size; ``None`` means :func:`default_workers`.  ``1`` executes
        in-process (no pool), which is also used automatically for
        single-point remainders.
    store:
        A :class:`ResultStore` for incremental re-runs, or ``None`` to
        always simulate.
    progress:
        Optional callback invoked once per completed point.
    start_method:
        :mod:`multiprocessing` start method; defaults to ``fork`` where
        available (cheap on Linux) and ``spawn`` elsewhere.
    monitor:
        Optional :class:`~repro.obs.progress.SweepMonitor` fed with point
        completions and (on pooled runs) worker events.
    tick:
        Optional zero-argument callback invoked whenever the live state
        may have changed (point done, events drained) — the CLI hangs its
        throttled progress renderer here.
    heartbeat_interval:
        Seconds between worker heartbeats; ``0`` disables the heartbeat
        thread (the online/start/done events still flow).
    timeline_interval:
        When set, every grid this runner executes collects an
        interval-sampled counter timeline (:mod:`repro.obs.timeline`) at
        that cadence: incoming specs are rewritten with the interval
        before lookup/execution.  The field is excluded from the spec
        key, so the rewrite never changes where results are cached.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        store: Optional[ResultStore] = None,
        progress: Optional[ProgressCallback] = None,
        start_method: Optional[str] = None,
        monitor: Optional[SweepMonitor] = None,
        tick: Optional[Callable[[], None]] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        timeline_interval: Optional[int] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if timeline_interval is not None and timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive")
        self._timeline_interval = timeline_interval
        self._workers = workers
        self._store = store
        self._progress = progress
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._monitor = monitor
        self._tick = tick
        self._heartbeat_interval = heartbeat_interval

    @property
    def workers(self) -> int:
        return self._workers if self._workers is not None else default_workers()

    @property
    def store(self) -> Optional[ResultStore]:
        return self._store

    @property
    def monitor(self) -> Optional[SweepMonitor]:
        return self._monitor

    # -- execution -----------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> RunResult:
        """Execute (or fetch) a single point."""
        report = self.run([spec])
        return report.result_for(spec)

    def run(self, grid: Union[RunGrid, Iterable[RunSpec]]) -> GridReport:
        """Execute every point of ``grid``, returning a :class:`GridReport`."""
        if not isinstance(grid, RunGrid):
            grid = RunGrid(grid)
        if self._timeline_interval is not None:
            # Key-neutral rewrite: timeline_interval is compare-excluded, so
            # the drivers' report lookups by their original specs still hit.
            grid = RunGrid(
                replace(spec, timeline_interval=self._timeline_interval)
                for spec in grid
            )
        started = time.perf_counter()
        report = GridReport()
        total = len(grid)
        pending: List[RunSpec] = []
        if self._monitor is not None:
            self._monitor.begin(total)

        for spec in grid:
            cached = self._store.get(spec) if self._store is not None else None
            if cached is not None:
                report.results[spec.key()] = cached
                report.cached += 1
                self._emit("cached", report, total, spec)
            else:
                pending.append(spec)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                self._run_serial(pending, report, total)
            else:
                self._run_pool(pending, report, total)

        report.elapsed_seconds = time.perf_counter() - started
        if self._monitor is not None:
            self._monitor.finish()
        return report

    def _emit(self, event: str, report: GridReport, total: int, spec: RunSpec) -> None:
        if self._monitor is not None:
            self._monitor.point_finished(event)
        if self._progress is not None:
            self._progress(event, report.total, total, spec)
        if self._tick is not None:
            self._tick()

    def _record_outcome(
        self, outcome: Dict[str, object], report: GridReport, total: int
    ) -> None:
        if outcome["status"] == "ok":
            result = RunResult.from_dict(outcome["result"])
            payload = outcome.get("timeline")
            if payload is not None:
                # to_dict() never carries the timeline; reattach it from the
                # worker's columnar payload before the store persists it.
                result = result.with_timeline(Timeline.from_payload(payload))
            report.results[result.spec.key()] = result
            report.simulated += 1
            if self._store is not None:
                if outcome.get("persisted"):
                    # A pool worker already appended this record to its own
                    # WAL (and sidecar); only the manifest/catalog note comes
                    # home — never the bytes twice.
                    self._store.note_external(result)
                else:
                    self._store.put(result)
            self._emit("simulated", report, total, result.spec)
        else:
            spec = RunSpec.from_dict(outcome["spec"])
            failure = RunFailure(
                spec=spec,
                error=str(outcome.get("error", "unknown error")),
                traceback=str(outcome.get("traceback", "")),
            )
            report.failures[spec.key()] = failure
            self._emit("failed", report, total, spec)

    def _run_serial(self, pending: List[RunSpec], report: GridReport, total: int) -> None:
        for spec in pending:
            self._record_outcome(execute_payload(spec.to_dict()), report, total)

    def _run_pool(self, pending: List[RunSpec], report: GridReport, total: int) -> None:
        context = multiprocessing.get_context(self._start_method)
        pool_size = min(self.workers, len(pending))
        payloads = [spec.to_dict() for spec in pending]
        # The event queue only exists when someone is watching; without a
        # monitor the pool still replicates obs/logging state but skips the
        # heartbeat machinery entirely.
        queue = context.Queue() if self._monitor is not None else None
        telemetry: Dict[int, Dict[str, object]] = {}
        store_path = str(self._store.path) if self._store is not None else None
        initargs = (
            queue,
            obs.state(),
            logging_state(),
            self._heartbeat_interval,
            store_path,
        )
        with context.Pool(
            processes=pool_size, initializer=_worker_init, initargs=initargs
        ) as pool:
            in_flight = [
                pool.apply_async(_execute_payload_observed, (payload,))
                for payload in payloads
            ]
            # apply_async + a poll loop (rather than imap_unordered) so the
            # parent can drain worker events and repaint progress *between*
            # completions — a stalled worker stays visible.
            while in_flight:
                self._drain_events(queue, timeout=0.05)
                still_running = []
                for handle in in_flight:
                    if handle.ready():
                        outcome = handle.get()
                        self._take_telemetry(outcome, telemetry)
                        self._record_outcome(outcome, report, total)
                    else:
                        still_running.append(handle)
                in_flight = still_running
                if self._tick is not None:
                    self._tick()
            # Final drain: queue feeder threads deliver asynchronously, so
            # a non-blocking sweep here would drop trailing events.
            self._drain_events(queue, timeout=0.2)
        for snapshot in telemetry.values():
            REGISTRY.absorb(snapshot.get("metrics", {}))
            TRACER.absorb(snapshot.get("phases", {}))

    def _drain_events(self, queue, timeout: float) -> None:
        """Feed queued worker events to the monitor, waiting ≤ ``timeout``."""
        if queue is None:
            time.sleep(timeout)
            return
        monitor = self._monitor
        deadline = time.monotonic() + timeout
        while True:
            wait = deadline - time.monotonic()
            if wait <= 0:
                return
            try:
                event = queue.get(timeout=wait)
            except (Empty, OSError, EOFError):
                return
            monitor.record_worker_event(event)

    @staticmethod
    def _take_telemetry(
        outcome: Dict[str, object], telemetry: Dict[int, Dict[str, object]]
    ) -> None:
        """Keep the latest cumulative snapshot per worker pid."""
        snapshot = outcome.pop("telemetry", None)
        if snapshot:
            telemetry[int(snapshot.get("pid", 0))] = snapshot


class StoreOnlyRunner(ParallelRunner):
    """A runner that answers exclusively from the result store.

    Grid points already cached resolve normally; anything else becomes a
    :class:`RunFailure` instead of a simulation.  This is what lets
    ``repro-run report`` re-render any experiment from cached results with
    a hard guarantee that nothing is re-simulated.
    """

    def __init__(self, store: ResultStore,
                 progress: Optional[ProgressCallback] = None) -> None:
        super().__init__(workers=1, store=store, progress=progress)

    def _run_serial(
        self, pending: List[RunSpec], report: GridReport, total: int
    ) -> None:
        for spec in pending:
            report.failures[spec.key()] = RunFailure(
                spec=spec,
                error=(
                    "not in the result store; simulate it first with "
                    "'repro-run run' or 'repro-run sweep'"
                ),
            )
            self._emit("failed", report, total, spec)

    def _run_pool(
        self, pending: List[RunSpec], report: GridReport, total: int
    ) -> None:  # pragma: no cover - workers pinned to 1 in __init__
        self._run_serial(pending, report, total)


def serial_runner() -> ParallelRunner:
    """The default runner of the experiment drivers: in-process, no cache."""
    return ParallelRunner(workers=1, store=None)
