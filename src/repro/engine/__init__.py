"""Parallel experiment engine.

The engine turns the library's simulation points into declarative,
hashable :class:`RunSpec` values, executes whole :class:`RunGrid` sweeps
across a :mod:`multiprocessing` pool (:class:`ParallelRunner`) and keeps
every finished point in a content-addressed on-disk :class:`ResultStore`
so re-runs are incremental and points are shared across experiments.

Layers
------
``repro.engine.spec``
    :class:`RunSpec` / :class:`RunGrid` — declarative simulation points.
``repro.engine.execute``
    :func:`execute_spec` — rebuilds a :class:`~repro.coherence.system.
    TiledCMP` from a spec; the single code path used serially and in
    workers, so results are bit-identical either way.
``repro.engine.store``
    :class:`ResultStore` — JSONL cache keyed by the spec content hash.
``repro.engine.runner``
    :class:`ParallelRunner` / :class:`GridReport` — sharded execution
    with failure isolation and progress reporting.
``repro.engine.cli``
    The unified command line (``python -m repro.engine`` / ``repro-run``):
    any figure experiment, ad-hoc sweeps, or the full suite.

Quick start
-----------
>>> from repro.engine import ParallelRunner, RunGrid
>>> grid = RunGrid.product(workload=["Oracle"], tracked_level=["L1", "L2"],
...                        provisioning=2.0, scale=64, measure_accesses=2_000)
>>> report = ParallelRunner(workers=1).run(grid)
>>> len(report.results)
2
"""

from repro.engine.execute import execute_payload, execute_spec
from repro.engine.results import RunFailure, RunResult
from repro.engine.runner import (
    EngineError,
    GridReport,
    ParallelRunner,
    StoreOnlyRunner,
    default_workers,
    serial_runner,
)
from repro.engine.spec import (
    DEFAULT_MEASURE_ACCESSES,
    DEFAULT_SCALE,
    SPEC_VERSION,
    RunGrid,
    RunSpec,
)
from repro.engine.store import (
    ResultStore,
    default_store_path,
    iter_store_records,
    iter_store_results,
)

__all__ = [
    "SPEC_VERSION",
    "DEFAULT_SCALE",
    "DEFAULT_MEASURE_ACCESSES",
    "RunSpec",
    "RunGrid",
    "RunResult",
    "RunFailure",
    "ResultStore",
    "iter_store_records",
    "iter_store_results",
    "default_store_path",
    "EngineError",
    "GridReport",
    "ParallelRunner",
    "StoreOnlyRunner",
    "default_workers",
    "serial_runner",
    "execute_spec",
    "execute_payload",
]
