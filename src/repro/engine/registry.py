"""Registry of the paper's experiments for the unified CLI.

Each entry binds an experiment name to its driver module's ``run`` /
``format_table`` pair and records which engine-level options the driver
understands.  Simulation-based experiments accept a
:class:`~repro.engine.runner.ParallelRunner` and the usual scaling knobs;
the analytical experiments (Figures 4 and 13) and the standalone hash
characterisation (Figure 7) have no simulation points to shard or cache
and are simply invoked.

This module deliberately lives *outside* ``repro.engine.__init__``: it
imports the experiment drivers, which in turn import the engine, so it is
only pulled in by the CLI entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.engine.runner import ParallelRunner
from repro.engine.spec import RunGrid
from repro.experiments import (
    ablation_hash_functions,
    fig04_scalability,
    fig07_hash_characteristics,
    fig08_occupancy,
    fig09_provisioning,
    fig10_insertion_attempts,
    fig11_worst_case,
    fig12_invalidations,
    fig13_power_area,
    mix_occupancy,
)

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One named, CLI-runnable experiment."""

    name: str
    title: str
    simulated: bool
    run: Callable
    format_table: Callable
    options: Tuple[str, ...] = ()
    grid: Optional[Callable] = None


def _experiments() -> Dict[str, Experiment]:
    sim_options = ("workloads", "scale", "measure_accesses", "seed", "runner")
    entries = [
        Experiment(
            name="fig04",
            title="Figure 4 — area/energy scalability of the baselines (analytical)",
            simulated=False,
            run=fig04_scalability.run,
            format_table=fig04_scalability.format_table,
        ),
        Experiment(
            name="fig07",
            title="Figure 7 — d-ary cuckoo hash characteristics",
            simulated=False,
            run=fig07_hash_characteristics.run,
            format_table=fig07_hash_characteristics.format_table,
        ),
        Experiment(
            name="fig08",
            title="Figure 8 — average directory occupancy per workload",
            simulated=True,
            run=fig08_occupancy.run,
            format_table=fig08_occupancy.format_table,
            options=sim_options,
            grid=fig08_occupancy.grid,
        ),
        Experiment(
            name="fig09",
            title="Figure 9 — Cuckoo directory sizing sweep",
            simulated=True,
            run=fig09_provisioning.run,
            format_table=fig09_provisioning.format_table,
            options=sim_options,
            grid=fig09_provisioning.grid,
        ),
        Experiment(
            name="fig10",
            title="Figure 10 — average insertion attempts of the chosen designs",
            simulated=True,
            run=fig10_insertion_attempts.run,
            format_table=fig10_insertion_attempts.format_table,
            options=sim_options,
            grid=fig10_insertion_attempts.grid,
        ),
        Experiment(
            name="fig11",
            title="Figure 11 — worst-case insertion-attempt distributions",
            simulated=True,
            run=fig11_worst_case.run,
            format_table=fig11_worst_case.format_table,
            options=("scale", "measure_accesses", "seed", "runner"),
            grid=fig11_worst_case.grid,
        ),
        Experiment(
            name="fig12",
            title="Figure 12 — forced-invalidation rate comparison",
            simulated=True,
            run=fig12_invalidations.run,
            format_table=fig12_invalidations.format_table,
            options=sim_options,
            grid=fig12_invalidations.grid,
        ),
        Experiment(
            name="fig13",
            title="Figure 13 — power/area comparison to 1024 cores (analytical)",
            simulated=False,
            run=fig13_power_area.run,
            format_table=fig13_power_area.format_table,
        ),
        Experiment(
            name="mix",
            title="Multi-programmed mixes — occupancy/invalidations per two-program mix",
            simulated=True,
            run=mix_occupancy.run,
            format_table=mix_occupancy.format_table,
            options=sim_options,
            grid=mix_occupancy.grid,
        ),
        Experiment(
            name="ablation-hash",
            title="Section 5.5 — skewing vs. strong hash function ablation",
            simulated=True,
            run=ablation_hash_functions.run,
            format_table=ablation_hash_functions.format_table,
            options=("scale", "measure_accesses", "seed", "runner"),
            grid=ablation_hash_functions.grid,
        ),
    ]
    return {entry.name: entry for entry in entries}


EXPERIMENTS: Dict[str, Experiment] = _experiments()


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        valid = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {name!r}; expected one of: {valid}")


def run_experiment(
    name: str,
    runner: Optional[ParallelRunner] = None,
    workloads: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
    measure_accesses: Optional[int] = None,
    seed: Optional[int] = None,
) -> Tuple[object, str]:
    """Run one experiment with whichever options it supports.

    Returns ``(result, formatted_table)``.
    """
    experiment = get_experiment(name)
    kwargs = {}
    overrides = {
        "workloads": workloads,
        "scale": scale,
        "measure_accesses": measure_accesses,
        "seed": seed,
        "runner": runner,
    }
    for option, value in overrides.items():
        if option in experiment.options and value is not None:
            kwargs[option] = value
    result = experiment.run(**kwargs)
    return result, experiment.format_table(result)
