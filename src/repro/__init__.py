"""repro — reproduction of the Cuckoo Directory (HPCA 2011).

A trace-driven model of CMP cache coherence directories built around the
paper's contribution, the *Cuckoo directory*: a coherence directory whose
tag store is a d-ary cuckoo hash table, giving set-associative lookup cost
with practically no conflict-induced invalidations and no capacity
over-provisioning.

Public API overview
-------------------
``repro.core``
    :class:`~repro.core.CuckooHashTable` and
    :class:`~repro.core.CuckooDirectory` — the paper's contribution.
``repro.directories``
    Baseline organizations (Duplicate-Tag, Sparse, Skewed, In-Cache,
    Tagless) and sharer-set encodings.
``repro.cache`` / ``repro.coherence``
    The tiled-CMP substrate: set-associative caches, the MESI protocol,
    address-interleaved directory slices and the trace simulator.
``repro.workloads``
    Synthetic Table 2 workload generators.
``repro.energy``
    The analytical energy/area scaling model behind Figures 4 and 13.
``repro.experiments``
    One driver per paper figure.

Quick start
-----------
>>> from repro import CuckooDirectory
>>> directory = CuckooDirectory(num_caches=32, num_sets=512, num_ways=4)
>>> directory.add_sharer(0x1234, cache_id=3).inserted_new_entry
True
>>> sorted(directory.lookup(0x1234).sharers)
[3]
"""

from repro.config import (
    CacheConfig,
    CacheLevel,
    DirectoryConfig,
    PAPER_EVENT_MIX,
    PRIVATE_L2_16CORE,
    SHARED_L2_16CORE,
    SystemConfig,
)
from repro.core import CuckooDirectory, CuckooHashTable
from repro.coherence import MemoryAccess, SimulationResult, TiledCMP, TraceSimulator
from repro.directories import (
    Directory,
    DirectoryStats,
    DuplicateTagDirectory,
    InCacheDirectory,
    SkewedDirectory,
    SparseDirectory,
    TaglessDirectory,
)

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "CacheConfig",
    "CacheLevel",
    "DirectoryConfig",
    "SystemConfig",
    "SHARED_L2_16CORE",
    "PRIVATE_L2_16CORE",
    "PAPER_EVENT_MIX",
    "CuckooHashTable",
    "CuckooDirectory",
    "Directory",
    "DirectoryStats",
    "DuplicateTagDirectory",
    "SparseDirectory",
    "SkewedDirectory",
    "InCacheDirectory",
    "TaglessDirectory",
    "MemoryAccess",
    "TiledCMP",
    "TraceSimulator",
    "SimulationResult",
]
