"""Tagless coherence directory (Zebchuk et al., MICRO '09).

The Tagless directory replaces per-block tags with a *grid of Bloom
filters*: the directory is organised into buckets indexed like the private
cache sets, and each bucket holds one Bloom filter per tracked cache
summarising the tags that cache holds in the corresponding set.  A lookup
tests the block against every cache's filter and returns the caches whose
filters report membership — a strict superset of the true sharers, which
preserves correctness at the cost of spurious invalidation messages.

Because filters never overflow, the Tagless directory performs no forced
invalidations; its weakness, which Figures 4 and 13 expose, is that both
lookup and update touch one filter per cache, so energy per operation
grows linearly with the core count (quadratically in aggregate).

This implementation uses *counting* Bloom filters internally so sharer
removal (cache evictions) works without the periodic rebuilds the hardware
proposal uses; the membership answer (and therefore the false-positive
behaviour) is the same as for a plain Bloom filter with the same geometry.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import CacheConfig
from repro.directories.base import Directory, LookupResult, UpdateResult
from repro.hashing.strong import mix64

__all__ = ["TaglessDirectory"]


class TaglessDirectory(Directory):
    """Bloom-filter-grid directory with per-cache, per-bucket filters.

    Parameters
    ----------
    num_caches:
        Number of tracked private caches.
    cache_config:
        Geometry of each tracked cache; buckets mirror its set count
        (divided across ``num_slices`` address-interleaved slices).
    filter_bits:
        Bits per Bloom filter (per cache, per bucket).
    num_hashes:
        Hash functions per filter.
    num_slices:
        Address-interleaved slices the aggregate directory is split into.
    """

    def __init__(
        self,
        num_caches: int,
        cache_config: CacheConfig,
        filter_bits: int = 64,
        num_hashes: int = 2,
        num_slices: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(num_caches)
        if filter_bits <= 0:
            raise ValueError("filter_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        if num_slices <= 0:
            raise ValueError("num_slices must be positive")
        self._cache_config = cache_config
        self._num_buckets = max(1, cache_config.num_sets // num_slices)
        self._filter_bits = filter_bits
        self._num_hashes = num_hashes
        self._seed = seed
        # counters[bucket, cache, bit] -> small saturating counter.
        self._counters = np.zeros(
            (self._num_buckets, num_caches, filter_bits), dtype=np.int32
        )
        # Exact membership kept alongside for occupancy accounting and to make
        # removals exact; the *reported* sharers still come from the filters.
        self._exact: List[List[set]] = [
            [set() for _ in range(num_caches)] for _ in range(self._num_buckets)
        ]

    # -- geometry -----------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return self._num_buckets

    @property
    def filter_bits(self) -> int:
        return self._filter_bits

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def capacity(self) -> int:
        """Worst-case number of blocks trackable: one per tracked cache frame."""
        return self._num_buckets * self._num_caches * self._cache_config.associativity

    @property
    def bits_per_lookup(self) -> int:
        """Bits read per lookup: k probe bits in every cache's filter."""
        return self._num_caches * self._num_hashes

    @property
    def bits_per_update(self) -> int:
        """Bits written per update: k bits in a single cache's filter."""
        return self._num_hashes

    def entry_count(self) -> int:
        return sum(
            len(members)
            for bucket in self._exact
            for members in bucket
        )

    def bucket_index(self, address: int) -> int:
        return address % self._num_buckets

    # -- operations -------------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        self._stats.lookups += 1
        self._stats.bits_read += self.bits_per_lookup
        bucket = self.bucket_index(address)
        bit_positions = self._bit_positions(address)
        sharers = frozenset(
            cache_id
            for cache_id in range(self._num_caches)
            if all(
                self._counters[bucket, cache_id, bit] > 0 for bit in bit_positions
            )
        )
        if sharers:
            self._stats.lookup_hits += 1
            return LookupResult(found=True, sharers=sharers)
        self._stats.lookup_misses += 1
        return LookupResult(found=False)

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        bucket = self.bucket_index(address)
        members = self._exact[bucket][cache_id]
        if address in members:
            self._stats.sharer_additions += 1
            return UpdateResult(inserted_new_entry=False, attempts=0)

        already_tracked = any(
            address in self._exact[bucket][other] for other in range(self._num_caches)
        )
        for bit in self._bit_positions(address):
            self._counters[bucket, cache_id, bit] += 1
        members.add(address)
        self._stats.bits_written += self.bits_per_update
        if already_tracked:
            self._stats.sharer_additions += 1
            return UpdateResult(inserted_new_entry=False, attempts=0)
        self._stats.insertions += 1
        self._stats.record_attempts(1)
        return UpdateResult(inserted_new_entry=True, attempts=1)

    def remove_sharer(self, address: int, cache_id: int) -> None:
        self._check_cache(cache_id)
        bucket = self.bucket_index(address)
        members = self._exact[bucket][cache_id]
        if address not in members:
            return
        for bit in self._bit_positions(address):
            self._counters[bucket, cache_id, bit] -= 1
        members.remove(address)
        self._stats.sharer_removals += 1
        self._stats.bits_written += self.bits_per_update
        still_tracked = any(
            address in self._exact[bucket][other] for other in range(self._num_caches)
        )
        if not still_tracked:
            self._stats.entry_removals += 1

    # -- diagnostics ---------------------------------------------------------
    def false_positive_sharers(self, address: int) -> int:
        """Number of caches the filters implicate that do not hold the block."""
        bucket = self.bucket_index(address)
        bit_positions = self._bit_positions(address)
        spurious = 0
        for cache_id in range(self._num_caches):
            reported = all(
                self._counters[bucket, cache_id, bit] > 0 for bit in bit_positions
            )
            if reported and address not in self._exact[bucket][cache_id]:
                spurious += 1
        return spurious

    # -- helpers ---------------------------------------------------------------
    def _bit_positions(self, address: int) -> List[int]:
        positions = []
        for k in range(self._num_hashes):
            mixed = mix64(address ^ mix64(self._seed + k + 1))
            positions.append(mixed % self._filter_bits)
        return positions
