"""Skewed-associative coherence directory (the "Skewed 2x" baseline).

Adapted from the skewed-associative cache [Seznec '93]: each way is a
direct-mapped array indexed by a *different* hash function, which breaks
most (but not all) conflict clusters and roughly doubles the perceived
associativity.  Crucially — and this is the distinction the paper draws in
Section 4.1 — the insertion procedure is still conventional: when all of a
block's candidate slots are occupied, one of them is victimised
immediately.  There is no displacement walk, so transitive conflicts still
cause forced invalidations, just less often than in a Sparse directory of
the same geometry.
"""

from __future__ import annotations

from typing import List, Optional, Type

from repro.directories.base import (
    LOOKUP_MISS,
    SHARERS_UPDATED,
    Directory,
    Invalidation,
    LookupResult,
    UpdateResult,
)
from repro.directories.sharers import FullBitVector, SharerSet
from repro.hashing.base import HashFamily
from repro.hashing.skewing import SkewingHashFamily

__all__ = ["SkewedDirectory"]


class _WayEntry:
    """One occupied slot: tracked address, sharers and an LRU stamp."""

    __slots__ = ("address", "sharers", "stamp")

    def __init__(self, address: int, sharers: SharerSet, stamp: int) -> None:
        self.address = address
        self.sharers = sharers
        self.stamp = stamp


class SkewedDirectory(Directory):
    """Skewed-associative directory with single-step LRU victimisation."""

    def __init__(
        self,
        num_caches: int,
        num_sets: int,
        num_ways: int = 4,
        hash_family: Optional[HashFamily] = None,
        sharer_cls: Type[SharerSet] = FullBitVector,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> None:
        super().__init__(num_caches)
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self._num_sets = num_sets
        self._num_ways = num_ways
        self._hashes = hash_family or SkewingHashFamily(num_ways, num_sets)
        if self._hashes.num_ways != num_ways or self._hashes.num_sets != num_sets:
            raise ValueError("hash family geometry does not match the directory")
        self._sharer_cls = sharer_cls
        self._sharer_kwargs = sharer_kwargs
        self._tag_bits = tag_bits
        # ways[w][s] -> entry or None
        self._ways: List[List[Optional[_WayEntry]]] = [
            [None] * num_sets for _ in range(num_ways)
        ]
        self._live_entries = 0
        self._clock = 0
        self._entry_bits = 1 + tag_bits + sharer_cls.storage_bits(
            num_caches, **sharer_kwargs
        )
        self._way_fns = self._hashes.way_functions()

    # -- geometry -----------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def capacity(self) -> int:
        return self._num_sets * self._num_ways

    @property
    def entry_bits(self) -> int:
        return self._entry_bits

    def entry_count(self) -> int:
        return self._live_entries

    # -- operations ------------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        self._stats.lookups += 1
        self._stats.bits_read += self._num_ways * self._tag_bits
        found = self._find(address)
        if found is None:
            self._stats.lookup_misses += 1
            return LOOKUP_MISS
        self._stats.lookup_hits += 1
        self._stats.bits_read += self.entry_bits - self._tag_bits
        _, _, entry = found
        return LookupResult(found=True, sharers=entry.sharers.sharers())

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        found = self._find(address)
        if found is not None:
            _, _, entry = found
            entry.sharers.add(cache_id)
            self._touch(entry)
            self._stats.sharer_additions += 1
            self._stats.bits_written += self.entry_bits - self._tag_bits
            return SHARERS_UPDATED

        invalidations = []
        candidates = [
            (way, fn(address)) for way, fn in enumerate(self._way_fns)
        ]
        slot = next(
            ((w, s) for w, s in candidates if self._ways[w][s] is None), None
        )
        if slot is None:
            # All candidate slots occupied: victimise the least recently used
            # one.  This is the single-step insertion that distinguishes the
            # skewed organization from the Cuckoo directory.
            way, set_index = min(
                candidates, key=lambda ws: self._ways[ws[0]][ws[1]].stamp
            )
            victim = self._ways[way][set_index]
            assert victim is not None
            invalidation = Invalidation(
                address=victim.address, caches=victim.sharers.sharers()
            )
            invalidations.append(invalidation)
            self._record_forced_invalidation(invalidation)
            self._ways[way][set_index] = None
            self._live_entries -= 1
            slot = (way, set_index)

        way, set_index = slot
        sharers = self._sharer_cls(self._num_caches, **self._sharer_kwargs)
        sharers.add(cache_id)
        entry = _WayEntry(address=address, sharers=sharers, stamp=0)
        self._touch(entry)
        self._ways[way][set_index] = entry
        self._live_entries += 1
        self._stats.insertions += 1
        self._stats.record_attempts(1)
        self._stats.bits_written += self.entry_bits
        return UpdateResult(
            inserted_new_entry=True, attempts=1, invalidations=tuple(invalidations)
        )

    def remove_sharer(self, address: int, cache_id: int) -> None:
        self._check_cache(cache_id)
        found = self._find(address)
        if found is None:
            return
        way, set_index, entry = found
        entry.sharers.remove(cache_id)
        self._stats.sharer_removals += 1
        self._stats.bits_written += self.entry_bits - self._tag_bits
        if entry.sharers.is_empty():
            self._ways[way][set_index] = None
            self._live_entries -= 1
            self._stats.entry_removals += 1

    # -- helpers -------------------------------------------------------------
    def _find(self, address: int):
        ways = self._ways
        for way, fn in enumerate(self._way_fns):
            set_index = fn(address)
            entry = ways[way][set_index]
            if entry is not None and entry.address == address:
                return way, set_index, entry
        return None

    def _touch(self, entry: _WayEntry) -> None:
        self._clock += 1
        entry.stamp = self._clock
