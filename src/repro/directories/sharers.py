"""Sharer-set representations.

A directory entry must record *which* private caches hold a block.  The
paper (Sections 3.2, 3.3 and 5.6) considers several encodings whose storage
and access cost differ dramatically as the number of caches grows:

* **Full bit vector** — one presence bit per cache; exact, but the entry
  width grows linearly with the cache count.
* **Coarse vector** — the SGI-Origin style scheme [Gupta et al. '90,
  Laudon & Lenoski '97]: a few exact pointers that fall back to a
  coarse-grained region vector on overflow.  Entry width grows only
  logarithmically (the paper budgets ``2*log2(#caches)`` bits).
* **Limited pointers** — a fixed number of exact pointers with a
  broadcast fallback on overflow.
* **Hierarchical vector** — a first-level coarse vector over groups plus
  second-level exact sub-vectors, modelling the two-level organizations
  of Wallach and Guo et al.

All representations implement :class:`SharerSet`.  ``sharers()`` returns
the set of caches that must receive an invalidation; inexact encodings
return a superset of the true sharers (never a subset), which preserves
coherence correctness at the cost of extra invalidation traffic.  Each
class also reports its storage width so the energy/area model can cost
directory entries without duplicating encoding rules.

Every representation stores its membership as one Python integer used as
a bitmask (bit *i* set == cache *i* holds the block) — exactly the
presence-bit vector the hardware stores.  Membership tests are a shift
and an AND, add/remove are single OR/AND-NOT operations, and the
simulator's per-access mutations allocate nothing.  The ``sharers()`` /
``exact_sharers()`` frozenset views are materialised only when a caller
actually needs to fan invalidations out.
"""

from __future__ import annotations

import abc
import math
from functools import lru_cache
from typing import FrozenSet, Iterator, List

__all__ = [
    "SharerSet",
    "FullBitVector",
    "CoarseVector",
    "LimitedPointer",
    "HierarchicalVector",
    "sharer_format",
]


@lru_cache(maxsize=None)
def _ceil_log2(value: int) -> int:
    return max(1, math.ceil(math.log2(value))) if value > 1 else 1


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


try:  # int.bit_count is Python >= 3.10; CI also runs 3.9.
    _popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised on older interpreters
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


class SharerSet(abc.ABC):
    """Abstract sharer-set representation for one directory entry."""

    def __init__(self, num_caches: int) -> None:
        if num_caches <= 0:
            raise ValueError("num_caches must be positive")
        self._num_caches = num_caches
        self._mask = 0

    # -- core mutation -----------------------------------------------------
    def add(self, cache_id: int) -> None:
        """Record that ``cache_id`` holds the block."""
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        self._mask |= 1 << cache_id
        self._on_change()

    def remove(self, cache_id: int) -> None:
        """Record that ``cache_id`` no longer holds the block.

        Removing a cache that is not a member is a no-op, matching the
        behaviour of hardware directories that receive redundant eviction
        notifications.
        """
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        self._mask &= ~(1 << cache_id)
        self._on_change()

    def clear(self) -> None:
        """Drop all sharers (entry invalidated)."""
        self._mask = 0
        self._on_change()

    # -- queries -----------------------------------------------------------
    def member_mask(self) -> int:
        """The true sharers as a presence bitmask (LSB = cache 0)."""
        return self._mask

    def exact_sharers(self) -> FrozenSet[int]:
        """The true sharers (ground truth kept for bookkeeping)."""
        return frozenset(_iter_bits(self._mask))

    @abc.abstractmethod
    def sharers(self) -> FrozenSet[int]:
        """Caches that must receive an invalidation.

        Exact encodings return exactly the members; inexact encodings may
        return a superset but never omit a member.
        """

    def is_empty(self) -> bool:
        return not self._mask

    def count(self) -> int:
        """Number of true sharers."""
        return _popcount(self._mask)

    def contains(self, cache_id: int) -> bool:
        self._check_cache(cache_id)
        return (self._mask >> cache_id) & 1 == 1

    @property
    def num_caches(self) -> int:
        return self._num_caches

    @property
    def is_exact(self) -> bool:
        """True when ``sharers()`` equals the true sharer set."""
        return self.sharers() == self.exact_sharers()

    def spurious_invalidations(self) -> int:
        """Number of non-sharers that would receive an invalidation."""
        return len(self.sharers() - self.exact_sharers())

    # -- storage accounting (used by the energy/area model) -----------------
    @classmethod
    @abc.abstractmethod
    def storage_bits(cls, num_caches: int, **kwargs: int) -> int:
        """Entry width in bits for a system with ``num_caches`` caches."""

    # -- helpers -------------------------------------------------------------
    def _on_change(self) -> None:
        """Hook for subclasses that maintain encoded state."""

    def _check_cache(self, cache_id: int) -> None:
        if not 0 <= cache_id < self._num_caches:
            raise IndexError(
                f"cache id {cache_id} out of range [0, {self._num_caches})"
            )

    def __iter__(self) -> Iterator[int]:
        return _iter_bits(self._mask)

    def __len__(self) -> int:
        return _popcount(self._mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = ",".join(str(i) for i in _iter_bits(self._mask))
        return f"{type(self).__name__}«{ids}»"


class FullBitVector(SharerSet):
    """Exact full bit-vector: one presence bit per cache.

    ``add``/``remove``/``sharers`` are re-implemented without the
    ``_on_change`` hook dispatch and generator machinery of the base class:
    this is the encoding every simulation-driven experiment stores per
    directory entry, so its three mutators sit directly on the coherence
    hot path.
    """

    def add(self, cache_id: int) -> None:
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        self._mask |= 1 << cache_id

    def remove(self, cache_id: int) -> None:
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        self._mask &= ~(1 << cache_id)

    def sharers(self) -> FrozenSet[int]:
        mask = self._mask
        if not mask & (mask - 1):  # zero or one sharer (the common cases)
            return frozenset((mask.bit_length() - 1,)) if mask else frozenset()
        members = []
        while mask:
            low = mask & -mask
            members.append(low.bit_length() - 1)
            mask ^= low
        return frozenset(members)

    def as_bits(self) -> List[int]:
        """The presence bit vector, LSB = cache 0 (useful for tests)."""
        return [(self._mask >> i) & 1 for i in range(self._num_caches)]

    @classmethod
    def storage_bits(cls, num_caches: int, **kwargs: int) -> int:
        return num_caches


class CoarseVector(SharerSet):
    """Exact-pointer representation with coarse-vector overflow.

    The entry holds ``num_pointers`` exact cache pointers.  When more
    caches share the block than fit in the pointers, the representation
    switches to a coarse bit vector where each bit covers
    ``region_size = num_caches / vector_bits`` caches, as in the SGI
    Origin's DIR-format fallback.  The paper's "Sparse Coarse" and
    "Cuckoo Coarse" designs budget ``2 * log2(num_caches)`` bits per entry,
    which is the default geometry here.
    """

    def __init__(
        self,
        num_caches: int,
        num_pointers: int | None = None,
        vector_bits: int | None = None,
    ) -> None:
        super().__init__(num_caches)
        pointer_bits = _ceil_log2(num_caches)
        if num_pointers is None:
            num_pointers = 2
        if vector_bits is None:
            vector_bits = max(1, min(num_caches, num_pointers * pointer_bits))
        if num_pointers <= 0:
            raise ValueError("num_pointers must be positive")
        if vector_bits <= 0:
            raise ValueError("vector_bits must be positive")
        self._num_pointers = num_pointers
        self._vector_bits = min(vector_bits, num_caches)
        self._region_size = math.ceil(num_caches / self._vector_bits)
        # region_masks[r] covers the caches of region r, clipped to the
        # cache count; built once so the coarse fan-out is a few ORs.
        region_size = self._region_size
        self._region_masks = []
        for start in range(0, num_caches, region_size):
            width = min(region_size, num_caches - start)
            self._region_masks.append(((1 << width) - 1) << start)

    @property
    def num_pointers(self) -> int:
        return self._num_pointers

    @property
    def region_size(self) -> int:
        return self._region_size

    @property
    def is_coarse(self) -> bool:
        """Whether the entry has overflowed into the coarse encoding."""
        return _popcount(self._mask) > self._num_pointers

    def sharers(self) -> FrozenSet[int]:
        if not self.is_coarse:
            return frozenset(_iter_bits(self._mask))
        covered = 0
        region_size = self._region_size
        region_masks = self._region_masks
        for cache_id in _iter_bits(self._mask):
            covered |= region_masks[cache_id // region_size]
        return frozenset(_iter_bits(covered))

    @classmethod
    def storage_bits(cls, num_caches: int, **kwargs: int) -> int:
        """Default budget: two exact pointers, i.e. ``2*log2(num_caches)`` bits."""
        num_pointers = kwargs.get("num_pointers", 2)
        return num_pointers * _ceil_log2(num_caches)


class LimitedPointer(SharerSet):
    """Limited-pointer representation with broadcast overflow (Dir-i-B)."""

    def __init__(self, num_caches: int, num_pointers: int = 4) -> None:
        super().__init__(num_caches)
        if num_pointers <= 0:
            raise ValueError("num_pointers must be positive")
        self._num_pointers = num_pointers

    @property
    def num_pointers(self) -> int:
        return self._num_pointers

    @property
    def is_broadcast(self) -> bool:
        return _popcount(self._mask) > self._num_pointers

    def sharers(self) -> FrozenSet[int]:
        if self.is_broadcast:
            return frozenset(range(self._num_caches))
        return frozenset(_iter_bits(self._mask))

    @classmethod
    def storage_bits(cls, num_caches: int, **kwargs: int) -> int:
        num_pointers = kwargs.get("num_pointers", 4)
        # One overflow ("broadcast") bit plus the pointers themselves.
        return 1 + num_pointers * _ceil_log2(num_caches)


class HierarchicalVector(SharerSet):
    """Two-level hierarchical sharer vector.

    The first level is a bit vector over ``num_groups`` groups of caches;
    each set first-level bit conceptually points at a second-level exact
    sub-vector over the caches of that group.  The invalidation target set
    is exact (both levels together identify the precise sharers); the
    storage saving comes from allocating second-level vectors only for
    groups that actually contain sharers, at the cost of replicating the
    tag for each allocated second-level entry — which the energy/area
    model accounts for separately.
    """

    def __init__(self, num_caches: int, num_groups: int | None = None) -> None:
        super().__init__(num_caches)
        if num_groups is None:
            num_groups = max(1, int(round(math.sqrt(num_caches))))
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        self._num_groups = min(num_groups, num_caches)
        self._group_size = math.ceil(num_caches / self._num_groups)

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def group_size(self) -> int:
        return self._group_size

    def groups_in_use(self) -> FrozenSet[int]:
        """First-level groups that currently contain at least one sharer."""
        group_size = self._group_size
        return frozenset(cache_id // group_size for cache_id in _iter_bits(self._mask))

    def sharers(self) -> FrozenSet[int]:
        return frozenset(_iter_bits(self._mask))

    @classmethod
    def storage_bits(cls, num_caches: int, **kwargs: int) -> int:
        """First-level group vector plus one second-level sub-vector.

        This is the per-entry width of the primary directory entry; the
        extra replicated-tag cost of additional second-level entries is
        modelled in :mod:`repro.energy`.
        """
        num_groups = kwargs.get(
            "num_groups", max(1, int(round(math.sqrt(num_caches))))
        )
        group_size = math.ceil(num_caches / num_groups)
        return num_groups + group_size

    @classmethod
    def second_level_bits(cls, num_caches: int, **kwargs: int) -> int:
        """Width of one second-level sub-vector."""
        num_groups = kwargs.get(
            "num_groups", max(1, int(round(math.sqrt(num_caches))))
        )
        return math.ceil(num_caches / num_groups)


_FORMATS = {
    "full": FullBitVector,
    "coarse": CoarseVector,
    "limited": LimitedPointer,
    "hierarchical": HierarchicalVector,
}


@lru_cache(maxsize=None)
def sharer_format(name: str):
    """Look up a sharer-set class by its short name.

    Valid names: ``full``, ``coarse``, ``limited``, ``hierarchical``.
    The lookup is memoized so the energy/area model can resolve formats
    per entry without paying the error-path string formatting.
    """
    try:
        return _FORMATS[name]
    except KeyError:
        valid = ", ".join(sorted(_FORMATS))
        raise ValueError(f"unknown sharer format {name!r}; expected one of {valid}")


def make_sharer_set(name: str, num_caches: int, **kwargs: int) -> SharerSet:
    """Instantiate a sharer set by format name."""
    return sharer_format(name)(num_caches, **kwargs)
