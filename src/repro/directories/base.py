"""Common directory interface and statistics.

Every directory organization in this library — the baselines in
:mod:`repro.directories` and the Cuckoo directory in :mod:`repro.core` —
implements :class:`Directory`.  The interface is deliberately small and
mirrors what a directory controller does on behalf of the coherence
protocol:

* ``lookup(address)`` — find the sharers of a block (read misses and
  write misses both start here);
* ``add_sharer(address, cache_id)`` — record a new sharer, allocating a
  new entry if the block is not yet tracked; this is the operation that
  can *force invalidations* when the organization runs out of
  non-conflicting space;
* ``remove_sharer(address, cache_id)`` — a private cache evicted the
  block; the entry becomes free when the last sharer leaves;
* ``acquire_exclusive(address, cache_id)`` — a write: every other sharer
  must be invalidated and the writer becomes the only sharer.

All organizations maintain the same :class:`DirectoryStats`, which the
experiments read to reproduce the paper's occupancy, insertion-attempt
and forced-invalidation figures, and which the energy model uses to
weight per-operation access energies.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "DirectoryEntry",
    "DirectoryStats",
    "LookupResult",
    "UpdateResult",
    "Invalidation",
    "Directory",
]


@dataclass
class DirectoryEntry:
    """One tracked block: its address (tag) and its sharer set."""

    address: int
    sharers: "object"  # SharerSet; typed loosely to avoid an import cycle.

    def is_empty(self) -> bool:
        return self.sharers.is_empty()


@dataclass(frozen=True)
class Invalidation:
    """A block that must be invalidated in a set of private caches.

    Produced when a directory organization victimises a live entry (a
    *forced* invalidation, the paper's key quality metric) and consumed by
    the coherence layer, which removes the block from the named caches.
    """

    address: int
    caches: FrozenSet[int]

    @property
    def num_messages(self) -> int:
        return len(self.caches)


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a directory lookup."""

    found: bool
    sharers: FrozenSet[int] = frozenset()

    def __bool__(self) -> bool:
        return self.found


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of a directory update (``add_sharer`` / ``acquire_exclusive``).

    ``invalidations`` lists blocks that had to be forcibly evicted from
    private caches to make room (set-conflict victims or failed cuckoo
    walks).  ``coherence_invalidations`` lists caches that must drop the
    *accessed* block because a writer requested exclusivity — those are
    ordinary protocol invalidations, not forced ones, and are not counted
    against the directory organization.
    """

    inserted_new_entry: bool = False
    attempts: int = 0
    invalidations: Tuple[Invalidation, ...] = ()
    coherence_invalidations: FrozenSet[int] = frozenset()

    @property
    def forced_invalidation_count(self) -> int:
        return len(self.invalidations)


#: Shared immutable results for the two most common directory outcomes:
#: a lookup miss and an in-place sharer update.  Both classes are frozen,
#: so handing every caller the same instance is safe and saves one
#: dataclass construction per directory operation on the hot path.
LOOKUP_MISS = LookupResult(found=False)
SHARERS_UPDATED = UpdateResult(inserted_new_entry=False, attempts=0)


@dataclass
class DirectoryStats:
    """Event counters shared by every directory organization."""

    lookups: int = 0
    lookup_hits: int = 0
    lookup_misses: int = 0
    insertions: int = 0
    insertion_attempts: int = 0
    sharer_additions: int = 0
    sharer_removals: int = 0
    entry_removals: int = 0
    invalidate_all_operations: int = 0
    forced_invalidations: int = 0
    forced_invalidation_messages: int = 0
    bits_read: int = 0
    bits_written: int = 0
    attempt_histogram: Counter = field(default_factory=Counter)
    occupancy_samples: int = 0
    occupancy_sum: float = 0.0

    # -- derived metrics -----------------------------------------------------
    @property
    def average_insertion_attempts(self) -> float:
        """Average attempts per new-entry insertion (Figures 9 and 10)."""
        if self.insertions == 0:
            return 0.0
        return self.insertion_attempts / self.insertions

    @property
    def forced_invalidation_rate(self) -> float:
        """Forced invalidations as a fraction of entry insertions (Figure 12)."""
        if self.insertions == 0:
            return 0.0
        return self.forced_invalidations / self.insertions

    @property
    def average_occupancy(self) -> float:
        """Mean directory occupancy over all recorded samples (Figure 8)."""
        if self.occupancy_samples == 0:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.lookup_hits / self.lookups

    def record_occupancy(self, occupancy: float) -> None:
        self.occupancy_samples += 1
        self.occupancy_sum += occupancy

    def record_attempts(self, attempts: int) -> None:
        self.insertion_attempts += attempts
        self.attempt_histogram[attempts] += 1

    def attempt_distribution(self) -> Dict[int, float]:
        """Normalised insertion-attempt histogram (Figure 11)."""
        total = sum(self.attempt_histogram.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.attempt_histogram.items())}

    def merge(self, other: "DirectoryStats") -> "DirectoryStats":
        """Aggregate counters from another slice (used to combine slices)."""
        merged = DirectoryStats(
            lookups=self.lookups + other.lookups,
            lookup_hits=self.lookup_hits + other.lookup_hits,
            lookup_misses=self.lookup_misses + other.lookup_misses,
            insertions=self.insertions + other.insertions,
            insertion_attempts=self.insertion_attempts + other.insertion_attempts,
            sharer_additions=self.sharer_additions + other.sharer_additions,
            sharer_removals=self.sharer_removals + other.sharer_removals,
            entry_removals=self.entry_removals + other.entry_removals,
            invalidate_all_operations=(
                self.invalidate_all_operations + other.invalidate_all_operations
            ),
            forced_invalidations=self.forced_invalidations + other.forced_invalidations,
            forced_invalidation_messages=(
                self.forced_invalidation_messages + other.forced_invalidation_messages
            ),
            bits_read=self.bits_read + other.bits_read,
            bits_written=self.bits_written + other.bits_written,
            occupancy_samples=self.occupancy_samples + other.occupancy_samples,
            occupancy_sum=self.occupancy_sum + other.occupancy_sum,
        )
        merged.attempt_histogram = Counter(self.attempt_histogram)
        merged.attempt_histogram.update(other.attempt_histogram)
        return merged


class Directory(abc.ABC):
    """Abstract coherence-directory organization (one slice).

    Concrete organizations store *entries* mapping block addresses to
    sharer sets.  Correctness contract (checked by the property tests):

    * after ``add_sharer(a, c)``, ``lookup(a)`` reports ``c`` as a sharer
      unless a later operation removed it;
    * the directory never reports a sharer that was never added or was
      removed (no stale sharers);
    * every entry the directory drops to make room is reported through
      :class:`UpdateResult.invalidations` so the private caches can be
      kept consistent (inclusion).
    """

    def __init__(self, num_caches: int) -> None:
        if num_caches <= 0:
            raise ValueError("num_caches must be positive")
        self._num_caches = num_caches
        self._stats = DirectoryStats()

    # -- required interface ---------------------------------------------------
    @abc.abstractmethod
    def lookup(self, address: int) -> LookupResult:
        """Find the sharers of ``address`` (does not modify the directory)."""

    @abc.abstractmethod
    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        """Record that ``cache_id`` now holds ``address``."""

    @abc.abstractmethod
    def remove_sharer(self, address: int, cache_id: int) -> None:
        """Record that ``cache_id`` evicted ``address``."""

    @abc.abstractmethod
    def entry_count(self) -> int:
        """Number of live (non-empty) entries currently stored."""

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Maximum number of entries the organization can store."""

    # -- default implementations ----------------------------------------------
    def acquire_exclusive(self, address: int, cache_id: int) -> UpdateResult:
        """Handle a write: invalidate all other sharers, leave only the writer.

        Returns an :class:`UpdateResult` whose ``coherence_invalidations``
        names the caches that must drop the block (protocol invalidations)
        and whose ``invalidations`` carries any forced victimisations that
        allocating the writer's entry required.
        """
        existing = self.lookup(address)
        to_invalidate = frozenset(c for c in existing.sharers if c != cache_id)
        # Add the writer first so the entry is updated in place and never
        # transiently freed (a hardware directory rewrites the sharer vector
        # of the existing entry; it does not deallocate and re-allocate it).
        result = self.add_sharer(address, cache_id)
        if to_invalidate:
            self._stats.invalidate_all_operations += 1
            for other in to_invalidate:
                self.remove_sharer(address, other)
        return UpdateResult(
            inserted_new_entry=result.inserted_new_entry,
            attempts=result.attempts,
            invalidations=result.invalidations,
            coherence_invalidations=to_invalidate,
        )

    def lookup_add(self, address: int, cache_id: int):
        """Fused ``lookup`` + ``add_sharer`` (the read-miss hot path).

        Returns ``(found, prior_sharers, update_result)`` where
        ``prior_sharers`` is the sharer set reported *before* ``cache_id``
        was added.  Statistics and state changes are exactly those of
        calling :meth:`lookup` then :meth:`add_sharer`; organizations with
        a hashed tag store override this to probe once instead of twice.
        """
        existing = self.lookup(address)
        result = self.add_sharer(address, cache_id)
        return existing.found, existing.sharers, result

    def contains(self, address: int) -> bool:
        return self.lookup(address).found

    def occupancy(self) -> float:
        """Fraction of directory capacity holding live entries."""
        if self.capacity == 0:
            return 0.0
        return self.entry_count() / self.capacity

    def sample_occupancy(self) -> float:
        """Record the current occupancy into the statistics and return it."""
        value = self.occupancy()
        self._stats.record_occupancy(value)
        return value

    @property
    def stash_occupancy(self) -> int:
        """Entries parked in an overflow stash (0 for stashless designs).

        Stash-backed organizations (:class:`~repro.core.stashed_cuckoo.
        StashedCuckooDirectory`) override this; the timeline's stash
        channel reads it uniformly across organizations.
        """
        return 0

    @property
    def stats(self) -> DirectoryStats:
        return self._stats

    @property
    def num_caches(self) -> int:
        return self._num_caches

    def reset_stats(self) -> None:
        """Clear statistics (used at the warm-up/measurement boundary)."""
        self._stats = DirectoryStats()

    # -- helpers shared by concrete organizations ------------------------------
    def _record_forced_invalidation(self, invalidation: Invalidation) -> None:
        self._stats.forced_invalidations += 1
        self._stats.forced_invalidation_messages += invalidation.num_messages

    def _check_cache(self, cache_id: int) -> None:
        if not 0 <= cache_id < self._num_caches:
            raise IndexError(
                f"cache id {cache_id} out of range [0, {self._num_caches})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(caches={self._num_caches}, "
            f"capacity={self.capacity}, entries={self.entry_count()})"
        )
