"""Coherence-directory organizations and sharer representations.

This package contains every *baseline* directory organization the paper
compares against, behind a single :class:`~repro.directories.base.Directory`
interface:

* :class:`~repro.directories.duplicate_tag.DuplicateTagDirectory` — mirrors
  the private-cache tag arrays (Piranha / Niagara style).
* :class:`~repro.directories.sparse.SparseDirectory` — the classic
  set-associative sparse directory with configurable over-provisioning.
* :class:`~repro.directories.skewed.SkewedDirectory` — skewed-associative
  indexing with conventional single-step victimisation.
* :class:`~repro.directories.in_cache.InCacheDirectory` — sharer vectors
  embedded in the inclusive shared-L2 tags.
* :class:`~repro.directories.tagless.TaglessDirectory` — the Bloom-filter
  grid of Zebchuk et al. (super-set sharer tracking).

The Cuckoo directory itself (the paper's contribution) lives in
:mod:`repro.core`, and also implements the same interface.

Sharer-set representations (full bit vector, coarse vector, limited
pointers, hierarchical) live in :mod:`repro.directories.sharers` and are
pluggable into any tag-based organization.
"""

from repro.directories.base import (
    Directory,
    DirectoryEntry,
    DirectoryStats,
    LookupResult,
    UpdateResult,
)
from repro.directories.duplicate_tag import DuplicateTagDirectory
from repro.directories.in_cache import InCacheDirectory
from repro.directories.sharers import (
    CoarseVector,
    FullBitVector,
    HierarchicalVector,
    LimitedPointer,
    SharerSet,
    sharer_format,
)
from repro.directories.skewed import SkewedDirectory
from repro.directories.sparse import SparseDirectory
from repro.directories.tagless import TaglessDirectory

__all__ = [
    "Directory",
    "DirectoryEntry",
    "DirectoryStats",
    "LookupResult",
    "UpdateResult",
    "DuplicateTagDirectory",
    "SparseDirectory",
    "SkewedDirectory",
    "InCacheDirectory",
    "TaglessDirectory",
    "SharerSet",
    "FullBitVector",
    "CoarseVector",
    "LimitedPointer",
    "HierarchicalVector",
    "sharer_format",
]
