"""In-cache coherence directory.

The in-cache organization extends every tag of an inclusive shared cache
with a sharer vector (Section 3.2).  Tag storage comes for free (the L2
already has tags) but the sharer storage is grossly over-provisioned: the
shared cache has far more tags than there are privately cached blocks, so
most vectors sit empty.  It also only applies to the Shared-L2
configuration — private L2s cannot be inclusive of each other.

Functionally the structure behaves like a Sparse directory whose geometry
equals the shared-cache slice (its sets × ways), with the additional
constraint that evicting a shared-cache block forces invalidation of the
tracked private copies (inclusion victims).
"""

from __future__ import annotations

from typing import Type

from repro.config import CacheConfig
from repro.directories.sparse import SparseDirectory
from repro.directories.sharers import FullBitVector, SharerSet

__all__ = ["InCacheDirectory"]


class InCacheDirectory(SparseDirectory):
    """Directory embedded in the inclusive shared-L2 tags.

    Parameters
    ----------
    num_caches:
        Number of tracked private caches.
    l2_slice_config:
        Geometry of the shared-L2 slice this directory piggybacks on.  The
        directory has exactly one entry per L2 frame.
    num_slices:
        Number of address-interleaved L2 banks; each bank holds
        ``l2 sets / num_slices`` sets of the aggregate shared cache.
    """

    def __init__(
        self,
        num_caches: int,
        l2_slice_config: CacheConfig,
        num_slices: int = 1,
        sharer_cls: Type[SharerSet] = FullBitVector,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> None:
        if num_slices <= 0:
            raise ValueError("num_slices must be positive")
        sets_per_slice = max(1, l2_slice_config.num_sets // num_slices)
        super().__init__(
            num_caches=num_caches,
            num_sets=sets_per_slice,
            num_ways=l2_slice_config.associativity,
            sharer_cls=sharer_cls,
            tag_bits=tag_bits,
            **sharer_kwargs,
        )
        self._l2_slice_config = l2_slice_config
        self._num_slices = num_slices

    @property
    def l2_slice_config(self) -> CacheConfig:
        return self._l2_slice_config

    @property
    def tag_storage_is_free(self) -> bool:
        """The L2 already stores the tags; only the sharer bits are added."""
        return True

    @property
    def added_bits_per_entry(self) -> int:
        """Bits this organization adds to each L2 tag (sharer vector only)."""
        return self._sharer_cls.storage_bits(self._num_caches, **self._sharer_kwargs)
