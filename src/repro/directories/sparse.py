"""Sparse (set-associative) coherence directory.

The Sparse directory [Gupta et al. '90] reduces the associativity of the
Duplicate-Tag organization by spreading entries across many sets indexed
by low-order tag bits.  Because the one-to-one correspondence between
directory entries and cache frames is lost, each entry carries an explicit
sharer set.  The cost is *set conflicts*: when a set fills up, inserting a
new entry forces a live entry out, and the blocks it tracked must be
invalidated in the private caches (a *forced invalidation*, Figure 12's
metric).  The paper evaluates Sparse directories at 2x and 8x capacity
over-provisioning to keep that conflict rate down.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Type

from repro.directories.base import (
    LOOKUP_MISS,
    SHARERS_UPDATED,
    Directory,
    DirectoryEntry,
    Invalidation,
    LookupResult,
    UpdateResult,
)
from repro.directories.sharers import FullBitVector, SharerSet

__all__ = ["SparseDirectory"]


class _SetEntry:
    """A directory entry plus the recency stamp used for LRU victimisation."""

    __slots__ = ("address", "sharers", "stamp")

    def __init__(self, address: int, sharers: SharerSet, stamp: int) -> None:
        self.address = address
        self.sharers = sharers
        self.stamp = stamp


class SparseDirectory(Directory):
    """Set-associative directory with LRU victimisation.

    Parameters
    ----------
    num_caches:
        Number of private caches tracked (width of the sharer sets).
    num_sets, num_ways:
        Geometry of the tag store.  Capacity is ``num_sets * num_ways``.
    sharer_cls:
        Sharer-set representation (default: exact full bit vector).
    tag_bits:
        Stored tag width, used only for the bits-read/bits-written
        accounting surfaced in :class:`DirectoryStats`.
    """

    def __init__(
        self,
        num_caches: int,
        num_sets: int,
        num_ways: int,
        sharer_cls: Type[SharerSet] = FullBitVector,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> None:
        super().__init__(num_caches)
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self._num_sets = num_sets
        self._num_ways = num_ways
        self._sharer_cls = sharer_cls
        self._sharer_kwargs = sharer_kwargs
        self._tag_bits = tag_bits
        self._sets: List[List[_SetEntry]] = [[] for _ in range(num_sets)]
        self._clock = 0
        self._entry_bits = 1 + tag_bits + sharer_cls.storage_bits(
            num_caches, **sharer_kwargs
        )

    # -- geometry --------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def capacity(self) -> int:
        return self._num_sets * self._num_ways

    @property
    def entry_bits(self) -> int:
        """Width of one directory entry (tag + sharer encoding + valid bit)."""
        return self._entry_bits

    def set_index(self, address: int) -> int:
        return address % self._num_sets

    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._sets)

    # -- operations -------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        self._stats.lookups += 1
        self._stats.bits_read += self._num_ways * self._tag_bits
        entry = self._find(address)
        if entry is None:
            self._stats.lookup_misses += 1
            return LOOKUP_MISS
        self._stats.lookup_hits += 1
        self._stats.bits_read += self.entry_bits - self._tag_bits
        return LookupResult(found=True, sharers=entry.sharers.sharers())

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        entry = self._find(address)
        if entry is not None:
            entry.sharers.add(cache_id)
            self._touch(entry)
            self._stats.sharer_additions += 1
            self._stats.bits_written += self.entry_bits - self._tag_bits
            return SHARERS_UPDATED

        # Allocate a new entry; a full set forces an invalidation of the victim.
        invalidations = []
        set_index = self.set_index(address)
        entries = self._sets[set_index]
        if len(entries) >= self._num_ways:
            victim = min(entries, key=lambda e: e.stamp)
            entries.remove(victim)
            invalidation = Invalidation(
                address=victim.address, caches=victim.sharers.sharers()
            )
            invalidations.append(invalidation)
            self._record_forced_invalidation(invalidation)

        sharers = self._sharer_cls(self._num_caches, **self._sharer_kwargs)
        sharers.add(cache_id)
        new_entry = _SetEntry(address=address, sharers=sharers, stamp=0)
        self._touch(new_entry)
        entries.append(new_entry)
        self._stats.insertions += 1
        self._stats.record_attempts(1)
        self._stats.bits_written += self.entry_bits
        return UpdateResult(
            inserted_new_entry=True, attempts=1, invalidations=tuple(invalidations)
        )

    def remove_sharer(self, address: int, cache_id: int) -> None:
        self._check_cache(cache_id)
        entry = self._find(address)
        if entry is None:
            return
        entry.sharers.remove(cache_id)
        self._stats.sharer_removals += 1
        self._stats.bits_written += self.entry_bits - self._tag_bits
        if entry.sharers.is_empty():
            self._sets[self.set_index(address)].remove(entry)
            self._stats.entry_removals += 1

    # -- helpers -------------------------------------------------------------
    def _find(self, address: int) -> Optional[_SetEntry]:
        for entry in self._sets[self.set_index(address)]:
            if entry.address == address:
                return entry
        return None

    def _touch(self, entry: _SetEntry) -> None:
        self._clock += 1
        entry.stamp = self._clock

    @classmethod
    def with_provisioning(
        cls,
        num_caches: int,
        tracked_frames: int,
        num_ways: int,
        provisioning: float,
        sharer_cls: Type[SharerSet] = FullBitVector,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> "SparseDirectory":
        """Build a Sparse directory sized at ``provisioning`` times the
        worst-case number of tracked blocks (the paper's 2x / 8x points)."""
        if provisioning <= 0:
            raise ValueError("provisioning must be positive")
        capacity = max(num_ways, int(round(tracked_frames * provisioning)))
        num_sets = max(1, capacity // num_ways)
        # Round the set count to a power of two, as a hardware indexer would.
        num_sets = 2 ** max(0, round(math.log2(num_sets)))
        return cls(
            num_caches=num_caches,
            num_sets=num_sets,
            num_ways=num_ways,
            sharer_cls=sharer_cls,
            tag_bits=tag_bits,
            **sharer_kwargs,
        )
