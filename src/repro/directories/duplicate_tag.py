"""Duplicate-Tag coherence directory (Piranha / Niagara style).

The Duplicate-Tag organization mirrors the tag arrays of every tracked
private cache.  Because the mirror has exactly the geometry of the caches
themselves (one frame per cache frame), there is always room to track
every cached block and *no forced invalidations ever occur* — at the cost
of a lookup that must compare against ``cache associativity × number of
caches`` tags (e.g. the 332-wide CAM of the OpenSPARC T2), which is what
makes the design power-hungry at scale (Section 3.1).

Sharer information is implicit: a cache shares a block iff the block's tag
is present in that cache's mirror.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import CacheConfig
from repro.directories.base import (
    Directory,
    Invalidation,
    LookupResult,
    UpdateResult,
)

__all__ = ["DuplicateTagDirectory"]


class _MirrorEntry:
    __slots__ = ("address", "stamp")

    def __init__(self, address: int, stamp: int) -> None:
        self.address = address
        self.stamp = stamp


class DuplicateTagDirectory(Directory):
    """Directory that duplicates every tracked cache's tag array.

    Parameters
    ----------
    num_caches:
        Number of tracked private caches.
    cache_config:
        Geometry of each tracked cache; the mirror per cache has
        ``mirror_sets = cache sets / num_slices`` sets (the slice only
        sees addresses homed to it) and the cache's associativity.
    num_slices:
        How many address-interleaved slices the aggregate directory is
        split into (1 = model the whole directory as a single structure).
    tag_bits:
        Stored tag width, used for bit accounting.
    """

    def __init__(
        self,
        num_caches: int,
        cache_config: CacheConfig,
        num_slices: int = 1,
        tag_bits: int = 36,
    ) -> None:
        super().__init__(num_caches)
        if num_slices <= 0:
            raise ValueError("num_slices must be positive")
        if cache_config.num_sets % num_slices != 0 and cache_config.num_sets >= num_slices:
            # Uneven interleaving is allowed but we round up so capacity is
            # never under-stated.
            pass
        self._cache_config = cache_config
        self._num_slices = num_slices
        self._mirror_sets = max(1, cache_config.num_sets // num_slices)
        self._mirror_ways = cache_config.associativity
        self._tag_bits = tag_bits
        # One mirror tag array per tracked cache: mirrors[cache][set] -> entries.
        self._mirrors: List[List[List[_MirrorEntry]]] = [
            [[] for _ in range(self._mirror_sets)] for _ in range(num_caches)
        ]
        self._clock = 0

    # -- geometry -----------------------------------------------------------
    @property
    def mirror_sets(self) -> int:
        return self._mirror_sets

    @property
    def mirror_ways(self) -> int:
        return self._mirror_ways

    @property
    def lookup_associativity(self) -> int:
        """Tags compared per lookup: cache associativity × number of caches."""
        return self._mirror_ways * self._num_caches

    @property
    def capacity(self) -> int:
        return self._num_caches * self._mirror_sets * self._mirror_ways

    @property
    def entry_bits(self) -> int:
        return 1 + self._tag_bits

    def entry_count(self) -> int:
        return sum(
            len(entries) for mirror in self._mirrors for entries in mirror
        )

    def set_index(self, address: int) -> int:
        return address % self._mirror_sets

    # -- operations -------------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        self._stats.lookups += 1
        # Every lookup compares the tags of the indexed set in every mirror.
        self._stats.bits_read += self.lookup_associativity * self._tag_bits
        sharers = frozenset(
            cache_id
            for cache_id in range(self._num_caches)
            if self._find(cache_id, address) is not None
        )
        if sharers:
            self._stats.lookup_hits += 1
            return LookupResult(found=True, sharers=sharers)
        self._stats.lookup_misses += 1
        return LookupResult(found=False)

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        if self._find(cache_id, address) is not None:
            # Already tracked for this cache; refresh recency only.
            self._touch(cache_id, address)
            self._stats.sharer_additions += 1
            return UpdateResult(inserted_new_entry=False, attempts=0)

        already_tracked = any(
            self._find(other, address) is not None
            for other in range(self._num_caches)
        )

        invalidations = []
        entries = self._mirrors[cache_id][self.set_index(address)]
        if len(entries) >= self._mirror_ways:
            # Can only happen when the driver does not mirror cache evictions;
            # victimise the LRU mirror entry and report the forced invalidation.
            victim = min(entries, key=lambda e: e.stamp)
            entries.remove(victim)
            invalidation = Invalidation(
                address=victim.address, caches=frozenset({cache_id})
            )
            invalidations.append(invalidation)
            self._record_forced_invalidation(invalidation)

        self._clock += 1
        entries.append(_MirrorEntry(address=address, stamp=self._clock))
        self._stats.bits_written += self.entry_bits
        if already_tracked:
            self._stats.sharer_additions += 1
        else:
            self._stats.insertions += 1
            self._stats.record_attempts(1)
        return UpdateResult(
            inserted_new_entry=not already_tracked,
            attempts=0 if already_tracked else 1,
            invalidations=tuple(invalidations),
        )

    def remove_sharer(self, address: int, cache_id: int) -> None:
        self._check_cache(cache_id)
        entries = self._mirrors[cache_id][self.set_index(address)]
        entry = next((e for e in entries if e.address == address), None)
        if entry is None:
            return
        entries.remove(entry)
        self._stats.sharer_removals += 1
        self._stats.bits_written += self.entry_bits
        still_tracked = any(
            self._find(other, address) is not None
            for other in range(self._num_caches)
        )
        if not still_tracked:
            self._stats.entry_removals += 1

    # -- helpers ---------------------------------------------------------------
    def _find(self, cache_id: int, address: int) -> Optional[_MirrorEntry]:
        entries = self._mirrors[cache_id][self.set_index(address)]
        return next((e for e in entries if e.address == address), None)

    def _touch(self, cache_id: int, address: int) -> None:
        entry = self._find(cache_id, address)
        if entry is not None:
            self._clock += 1
            entry.stamp = self._clock
